//! Integration tests for the pass driver: trace fidelity, cache
//! counters, batch determinism, and diagnostic serialization.

use lc_driver::json::Json;
use lc_driver::trace::{skip_reason_from_json, skip_reason_to_json};
use lc_driver::{Driver, DriverOptions, Skip, TraceOutcome};
use lc_ir::{BoundPart, SkipReason, Symbol};
use lc_xform::coalesce::CoalesceOptions;

const QUICKSTART: &str = "
    array A[100][50];
    doall i = 1..100 {
        doall j = 1..50 {
            A[i][j] = i * j;
        }
    }
";

const RECURRENCE: &str = "
    array A[8];
    array B[4][4];
    for i = 2..8 {
        A[i] = A[i - 1] + 1;
    }
    doall i = 1..4 {
        doall j = 1..4 {
            B[i][j] = i * j;
        }
    }
";

// ── trace fidelity ──────────────────────────────────────────────────────

#[test]
fn trace_lists_every_pass_with_nonzero_timing() {
    let driver = Driver::default();
    let out = driver.compile(QUICKSTART).unwrap();
    let expected = driver.manager().pass_names();
    let traced = out.trace.passes();
    for pass in &expected {
        assert!(traced.contains(pass), "pass `{pass}` missing from trace");
    }
    assert!(traced.contains(&"validate"), "validation step not traced");
    for e in &out.trace.events {
        assert!(e.nanos > 0, "pass `{}` has zero timing", e.pass);
    }
    assert!(out.trace.total_nanos > 0);
}

#[test]
fn trace_applied_events_match_what_happened() {
    let out = Driver::default().compile(RECURRENCE).unwrap();
    // Nest 0 (the recurrence) skips at the coalesce pass — only its
    // header normalization (2..8 → 1..7) applies; nest 1 coalesces.
    assert_eq!(out.trace.applied_passes(0), vec!["normalize"]);
    assert!(out.trace.events_for(0).any(|e| e.pass == "coalesce"
        && matches!(
            &e.outcome,
            TraceOutcome::Skipped {
                reason: SkipReason::CarriedDependence { level: 0, .. }
            }
        )));
    assert_eq!(out.trace.applied_passes(1), vec!["coalesce"]);
    // Coalesce rewrote both levels of nest 1.
    assert_eq!(out.trace.rewrites("coalesce"), 2);
    // The program-level validation ran and passed.
    assert!(out
        .trace
        .events
        .iter()
        .any(|e| e.nest.is_none() && e.outcome == TraceOutcome::Validated));
}

#[test]
fn trace_round_trips_through_json_for_a_real_compilation() {
    let out = Driver::default().compile(RECURRENCE).unwrap();
    let text = out.trace.to_json_string();
    let back = lc_driver::PipelineTrace::from_json_string(&text).unwrap();
    assert_eq!(back, out.trace);
    // And the report mentions every traced pass.
    let report = out.trace.report();
    for pass in out.trace.passes() {
        assert!(report.contains(pass));
    }
}

// ── analysis cache ──────────────────────────────────────────────────────

#[test]
fn dependence_analysis_runs_at_most_once_per_nest() {
    // Default pipeline: the interchange pass requests deps first, the
    // coalesce pass reuses them from the cache.
    let out = Driver::default().compile(QUICKSTART).unwrap();
    assert_eq!(out.trace.cache.deps_computed, 1);
    assert!(out.trace.cache.deps_hits >= 1, "coalesce missed the cache");
    assert_eq!(out.trace.cache.normalize_computed, 1);
    assert!(out.trace.cache.normalize_hits >= 1);
    assert_eq!(out.trace.cache.nest_computed, 1);
}

#[test]
fn cache_counters_scale_per_nest() {
    let out = Driver::default().compile(RECURRENCE).unwrap();
    // Two nests, each analyzed exactly once.
    assert_eq!(out.trace.cache.deps_computed, 2);
    assert_eq!(out.trace.cache.normalize_computed, 2);
    assert_eq!(out.trace.cache.nest_computed, 2);
    assert!(out.trace.cache.hits() > 0);
}

#[test]
fn symbolic_nests_never_reach_dependence_analysis_twice() {
    let out = Driver::default()
        .compile(
            "
            array A[12][9];
            n = 12;
            m = 9;
            doall i = 1..n {
                doall j = 1..m {
                    A[i][j] = i * 100 + j;
                }
            }
            ",
        )
        .unwrap();
    assert_eq!(out.coalesced.len(), 1);
    assert!(out.coalesced[0].dims.is_empty(), "took the symbolic path");
    // The cached (normalized-nest) analysis never runs for a symbolic
    // nest; the symbolic path's own analysis runs once inside lc-xform.
    assert_eq!(out.trace.cache.deps_computed, 0);
}

// ── facade equivalence ──────────────────────────────────────────────────

#[test]
fn default_driver_matches_facade_output_on_quickstart() {
    let driver_out = Driver::default().compile(QUICKSTART).unwrap();
    let compat_out = Driver::new(DriverOptions::facade_compat(CoalesceOptions::default()))
        .compile(QUICKSTART)
        .unwrap();
    assert_eq!(driver_out.transformed_source, compat_out.transformed_source);
    assert!(driver_out.transformed_source.contains("doall jc = 1..5000"));
}

// ── batch compilation ───────────────────────────────────────────────────

fn batch_sources() -> Vec<String> {
    // 72 programs with varying shapes: mostly coalescible, some with
    // carried dependences, some symbolic.
    (0..72)
        .map(|k| {
            let n = 2 + (k % 7);
            let m = 3 + (k % 5);
            match k % 3 {
                0 => format!(
                    "array A[{n}][{m}];
                     doall i = 1..{n} {{
                         doall j = 1..{m} {{
                             A[i][j] = i * {k} + j;
                         }}
                     }}"
                ),
                1 => format!(
                    "array A[{n}][{m}];
                     array B[{n}];
                     for i = 2..{n} {{
                         B[i] = B[i - 1] + {k};
                     }}
                     doall i = 1..{n} {{
                         doall j = 1..{m} {{
                             A[i][j] = i + j;
                         }}
                     }}"
                ),
                _ => format!(
                    "array A[{n}][{m}];
                     u = {n};
                     v = {m};
                     doall i = 1..u {{
                         doall j = 1..v {{
                             A[i][j] = i * j + {k};
                         }}
                     }}"
                ),
            }
        })
        .collect()
}

#[test]
fn batch_matches_sequential_compilation_byte_for_byte() {
    let sources = batch_sources();
    assert!(sources.len() >= 64);
    let driver = Driver::default();
    let parallel = driver.compile_batch(&sources);
    assert_eq!(parallel.len(), sources.len());
    for (i, src) in sources.iter().enumerate() {
        let sequential = driver.compile(src).unwrap();
        let batched = parallel[i].result.as_ref().unwrap();
        assert_eq!(
            batched.transformed_source, sequential.transformed_source,
            "program {i} diverged"
        );
        assert_eq!(batched.skipped, sequential.skipped);
        assert_eq!(batched.coalesced.len(), sequential.coalesced.len());
        assert!(parallel[i].nanos >= 1, "program {i} has no wall time");
    }
}

#[test]
fn batch_is_deterministic_across_runs() {
    let sources = batch_sources();
    let driver = Driver::default();
    let a = driver.compile_batch(&sources);
    let b = driver.compile_batch(&sources);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(
            x.result.as_ref().unwrap().transformed_source,
            y.result.as_ref().unwrap().transformed_source
        );
    }
}

#[test]
fn batch_surfaces_per_program_errors_in_place() {
    let sources = vec![
        QUICKSTART.to_string(),
        "this is not a program".to_string(),
        QUICKSTART.to_string(),
    ];
    let results = Driver::default().compile_batch(&sources);
    assert!(results[0].result.is_ok());
    assert!(results[1].result.is_err());
    assert!(results[2].result.is_ok());
    for item in &results {
        assert!(item.nanos >= 1);
    }
}

// ── diagnostics serialization ───────────────────────────────────────────

#[test]
fn skip_reasons_round_trip_through_json() {
    let var = Symbol::new("i");
    let reasons = vec![
        SkipReason::BandOutOfRange {
            start: 0,
            end: 3,
            depth: 2,
        },
        SkipReason::CarriedDependence {
            level: 1,
            var: var.clone(),
        },
        SkipReason::NotDoall { var: var.clone() },
        SkipReason::NotDoallUnchecked,
        SkipReason::ScalarReduction { var: var.clone() },
        SkipReason::SymbolicBound {
            var: var.clone(),
            part: BoundPart::Upper,
        },
        SkipReason::SymbolicBounds,
        SkipReason::NotNormalized { var: var.clone() },
        SkipReason::NotUnitNormalized { var: var.clone() },
        SkipReason::VariantBound {
            var: var.clone(),
            dep: Symbol::new("n"),
        },
        SkipReason::InterchangeOutOfRange { level: 3, depth: 2 },
        SkipReason::NotRectangular {
            var: var.clone(),
            other: Symbol::new("j"),
        },
        SkipReason::InterchangeIllegal {
            level: 0,
            array: Symbol::new("A"),
        },
        SkipReason::ImperfectNest { found: 2 },
        SkipReason::NothingLegal,
        SkipReason::LintDenied {
            code: "LC001".into(),
            message: "`doall i` (level 0) carries a flow dependence".into(),
        },
        SkipReason::Other("free-form".into()),
    ];
    for reason in reasons {
        let text = skip_reason_to_json(&reason).to_string();
        let back = skip_reason_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, reason, "round-trip failed for {reason:?}");
    }
}

#[test]
fn skips_round_trip_and_render_the_seed_messages() {
    let skip = Skip {
        nest: 3,
        reason: SkipReason::SymbolicBounds,
        fallback: Some(SkipReason::NotDoallUnchecked),
    };
    let back = Skip::from_json(&Json::parse(&skip.to_json().to_string()).unwrap()).unwrap();
    assert_eq!(back, skip);
    assert_eq!(
        skip.to_string(),
        "nest has symbolic bounds; symbolic fallback: \
         legality checking disabled and some level is not a doall"
    );
    let plain = Skip {
        nest: 0,
        reason: SkipReason::CarriedDependence {
            level: 0,
            var: Symbol::new("i"),
        },
        fallback: None,
    };
    assert_eq!(
        plain.to_string(),
        "dependence carried at level `i` forbids coalescing"
    );
}

// ── static analysis stage ───────────────────────────────────────────────

const RACY_DOALL: &str = "
    array A[8];
    doall i = 2..8 {
        A[i] = A[i - 1];
    }
";

#[test]
fn analyze_stage_traces_per_lint_timings() {
    let out = Driver::default().compile(QUICKSTART).unwrap();
    // The default lint set runs every lint at `warn`: the stage summary
    // event plus one `lint:LCxxx` event per lint, all with real timings.
    let analyze = out
        .trace
        .events_for(0)
        .find(|e| e.pass == "analyze")
        .expect("analyze stage must be traced");
    assert_eq!(
        analyze.outcome,
        TraceOutcome::Analyzed {
            findings: 0,
            denied: 0
        }
    );
    for code in ["LC001", "LC002", "LC003", "LC004", "LC005"] {
        let event = out
            .trace
            .events_for(0)
            .find(|e| e.pass == format!("lint:{code}"))
            .unwrap_or_else(|| panic!("lint:{code} missing from trace"));
        assert!(event.nanos >= 1);
    }
    assert!(out.lints.is_empty(), "{:?}", out.lints);
    // A trace carrying analyzed events still round-trips through JSON.
    let text = out.trace.to_json_string();
    assert_eq!(
        lc_driver::PipelineTrace::from_json_string(&text).unwrap(),
        out.trace
    );
}

#[test]
fn warned_race_is_reported_but_does_not_block_the_pipeline() {
    let out = Driver::default().compile(RACY_DOALL).unwrap();
    // Default severity is `warn`: the finding lands in `lints` with its
    // direction vector, and the pipeline still runs (coalesce itself
    // skips on the carried dependence, as before).
    let racy: Vec<_> = out
        .lints
        .iter()
        .filter(|f| f.code.code() == "LC001")
        .collect();
    assert_eq!(racy.len(), 1, "{:?}", out.lints);
    assert_eq!(racy[0].detail("direction"), Some("(<)"));
    assert_eq!(racy[0].detail("kind"), Some("flow"));
    assert!(!out
        .skipped
        .iter()
        .any(|s| matches!(s.reason, SkipReason::LintDenied { .. })));
    let analyze = out
        .trace
        .events_for(0)
        .find(|e| e.pass == "analyze")
        .unwrap();
    assert_eq!(
        analyze.outcome,
        TraceOutcome::Analyzed {
            findings: 1,
            denied: 0
        }
    );
}

#[test]
fn denied_lint_vetoes_the_nest() {
    use lc_lint::{LintCode, LintSet, Severity};
    let options = DriverOptions {
        lints: LintSet::default().with(LintCode::DoallRace, Severity::Deny),
        ..Default::default()
    };
    let out = Driver::new(options).compile(RACY_DOALL).unwrap();
    // The nest is emitted untransformed with a LintDenied diagnostic …
    assert!(out.coalesced.is_empty());
    assert_eq!(out.skipped.len(), 1);
    let SkipReason::LintDenied { code, message } = &out.skipped[0].reason else {
        panic!("expected LintDenied, got {:?}", out.skipped[0].reason);
    };
    assert_eq!(code, "LC001");
    assert!(message.contains("flow dependence"), "{message}");
    // … and every later pass no-ops (the analyze stage decided).
    for e in out.trace.events_for(0) {
        if e.pass != "analyze" && !e.pass.starts_with("lint:") {
            assert_eq!(e.outcome, TraceOutcome::Noop, "pass {} ran", e.pass);
        }
    }
    // The deny shows up in both the stage summary and the finding list.
    let analyze = out
        .trace
        .events_for(0)
        .find(|e| e.pass == "analyze")
        .unwrap();
    assert_eq!(
        analyze.outcome,
        TraceOutcome::Analyzed {
            findings: 1,
            denied: 1
        }
    );
    assert_eq!(out.lints.len(), 1);
    // The skip (with its LintDenied reason) round-trips through JSON.
    let skip = &out.skipped[0];
    let back = Skip::from_json(&Json::parse(&skip.to_json().to_string()).unwrap()).unwrap();
    assert_eq!(&back, skip);
}

#[test]
fn all_allow_disables_the_analyze_stage() {
    use lc_lint::LintSet;
    let options = DriverOptions {
        lints: LintSet::all_allow(),
        ..Default::default()
    };
    let out = Driver::new(options).compile(RACY_DOALL).unwrap();
    let analyze = out
        .trace
        .events_for(0)
        .find(|e| e.pass == "analyze")
        .unwrap();
    assert_eq!(analyze.outcome, TraceOutcome::Noop);
    assert!(out.lints.is_empty());
    assert!(!out.trace.events.iter().any(|e| e.pass.starts_with("lint:")));
}

#[test]
fn analyze_resolves_bounded_symbolic_trips_from_preceding_assignments() {
    use lc_lint::LintCode;
    // n is established by straight-line code before the nest; LC002 must
    // see it and prove the product overflows i64.
    let out = Driver::default()
        .compile(
            "
            array A[4];
            n = 4000000000;
            doall i = 1..n {
                doall j = 1..n {
                    doall k = 1..n {
                        A[1] = 0;
                    }
                }
            }
            ",
        )
        .unwrap();
    assert!(
        out.lints.iter().any(|f| f.code == LintCode::TripOverflow),
        "{:?}",
        out.lints
    );
}

// ── enabling passes ─────────────────────────────────────────────────────

#[test]
fn perfection_pass_enables_coalescing_of_imperfect_nests() {
    // Prologue statement between the headers: the facade-compat pipeline
    // must skip it, the full pipeline perfects then coalesces it.
    let src = "
        array P[6];
        array A[6][4];
        doall i = 1..6 {
            P[i] = i * 10;
            doall j = 1..4 {
                A[i][j] = i + j;
            }
        }
    ";
    // Facade-compat sees only the trivial depth-1 nest (extraction stops
    // at the prologue statement) — 6 iterations, nothing gained.
    let compat = Driver::new(DriverOptions::facade_compat(CoalesceOptions::default()))
        .compile(src)
        .unwrap();
    assert_eq!(compat.coalesced.len(), 1);
    assert_eq!(compat.coalesced[0].original_depth, 1);
    assert_eq!(compat.coalesced[0].total_iterations, 6);

    // The full pipeline perfects the nest first (the prologue sinks
    // under a first-iteration guard), then coalesces both levels into
    // one 24-iteration loop.
    let full = Driver::default().compile(src).unwrap();
    assert_eq!(full.coalesced.len(), 1, "{:?}", full.skipped);
    assert_eq!(full.coalesced[0].original_depth, 2);
    assert_eq!(full.coalesced[0].total_iterations, 24);
    assert!(full.trace.applied_passes(0).contains(&"perfect"));
}

#[test]
fn interchange_pass_moves_serial_level_inward() {
    // Outer level carries, inner is parallel: the interchange pass swaps
    // them (direction (<, =) stays legal) so a parallel level leads.
    let src = "
        array A[8][16];
        for i = 2..8 {
            doall j = 1..16 {
                A[i][j] = A[i - 1][j] + 1;
            }
        }
    ";
    let out = Driver::default().compile(src).unwrap();
    assert!(out.trace.applied_passes(0).contains(&"interchange"));
}

#[test]
fn advise_pass_overrides_the_band() {
    use lc_sched::advise::AdviseParams;
    let options = DriverOptions {
        advise: Some(AdviseParams {
            p: 16,
            body_cost: 50,
            ..Default::default()
        }),
        ..Default::default()
    };
    let out = Driver::new(options)
        .compile(
            "
            array V[8][8][8][8];
            doall a = 1..8 {
                doall b = 1..8 {
                    doall c = 1..8 {
                        doall d = 1..8 {
                            V[a][b][c][d] = a + b + c + d;
                        }
                    }
                }
            }
            ",
        )
        .unwrap();
    assert_eq!(out.coalesced.len(), 1);
    let (s, e) = out.coalesced[0].levels;
    assert!(e - s < 4, "advisor should pick a partial band");
    assert!(out.trace.applied_passes(0).contains(&"advise"));
    // Advice still needed only one dependence analysis.
    assert_eq!(out.trace.cache.deps_computed, 1);
}

#[test]
fn mixed_nest_coalesces_with_constant_recovery_on_constant_levels() {
    // Symbolic outer trip, constant inner trip: the per-level emitter
    // keeps the inner stride a literal, so only the total trip count is
    // computed at run time.
    let out = Driver::default()
        .compile(
            "
            array A[10][64];
            n = 10;
            doall i = 1..n {
                doall j = 1..64 {
                    A[i][j] = i * 100 + j;
                }
            }
            ",
        )
        .unwrap();
    assert_eq!(out.coalesced.len(), 1, "{:?}", out.skipped);
    // Runtime trips report the symbolic marker.
    assert!(out.coalesced[0].dims.is_empty());
    assert!(out.transformed_source.contains("lcs_total = 64 * n"));
    // Constant recovery: the inner-stride division is by the literal.
    assert!(
        out.transformed_source.contains("ceildiv(jc, 64)"),
        "expected literal-stride recovery, got:\n{}",
        out.transformed_source
    );
    assert!(
        !out.transformed_source.contains("lcs_0"),
        "no per-level stride scalar should be materialized:\n{}",
        out.transformed_source
    );
}

#[test]
fn mixed_partial_collapse_of_constant_band_under_symbolic_outer() {
    // The banded levels are constant even though the nest has a symbolic
    // outer level; the band coalesces on the constant path with full
    // metadata.
    let out = Driver::new(DriverOptions {
        coalesce: CoalesceOptions::builder().levels(1, 3).build(),
        ..Default::default()
    })
    .compile(
        "
        array A[6][4][5];
        n = 6;
        doall i = 1..n {
            doall j = 1..4 {
                doall k = 1..5 {
                    A[i][j][k] = i + 10 * j + 100 * k;
                }
            }
        }
        ",
    )
    .unwrap();
    assert_eq!(out.coalesced.len(), 1, "{:?}", out.skipped);
    assert_eq!(out.coalesced[0].dims, vec![4, 5]);
    assert_eq!(out.coalesced[0].total_iterations, 20);
    assert_eq!(out.coalesced[0].levels, (1, 3));
    assert!(!out.transformed_source.contains("lcs_"));
}

#[test]
fn mixed_partial_collapse_of_symbolic_band_under_constant_outer() {
    // Band (1, 3) where one banded trip is symbolic: the collapse
    // happens per level, with a preamble ahead of the preserved outer
    // loop's body... the preamble precedes the whole rewritten loop.
    let out = Driver::new(DriverOptions {
        coalesce: CoalesceOptions::builder().levels(0, 2).build(),
        ..Default::default()
    })
    .compile(
        "
        array A[6][4][5];
        m = 4;
        doall i = 1..6 {
            doall j = 1..m {
                doall k = 1..5 {
                    A[i][j][k] = i + 10 * j + 100 * k;
                }
            }
        }
        ",
    )
    .unwrap();
    assert_eq!(out.coalesced.len(), 1, "{:?}", out.skipped);
    assert!(out.coalesced[0].dims.is_empty());
    assert!(out.transformed_source.contains("lcs_total"));
}

#[test]
fn custom_pass_order_is_honored() {
    let options = DriverOptions {
        pass_order: Some(vec!["normalize".to_string(), "coalesce".to_string()]),
        ..Default::default()
    };
    let out = Driver::new(options)
        .compile(
            "
            array A[6][4];
            doall i = 1..6 {
                doall j = 1..4 {
                    A[i][j] = i + j;
                }
            }
            ",
        )
        .unwrap();
    assert_eq!(out.coalesced.len(), 1);
    let passes: Vec<&str> = out
        .trace
        .events
        .iter()
        .filter(|e| e.nest == Some(0))
        .map(|e| e.pass.as_str())
        .collect();
    assert_eq!(passes, vec!["normalize", "coalesce"]);
}

#[test]
fn unknown_pass_name_is_reported() {
    use lc_driver::PassManager;
    let err = PassManager::with_pipeline(DriverOptions::default(), &["coalesce", "optimize"])
        .err()
        .expect("unknown name must be rejected");
    assert!(err.contains("optimize"), "{err}");
    assert!(
        err.contains("coalesce"),
        "error lists registered passes: {err}"
    );
}

#[test]
fn registry_resolves_the_default_order() {
    use lc_driver::{pass_by_name, DEFAULT_PASS_ORDER};
    for name in DEFAULT_PASS_ORDER {
        let pass = pass_by_name(name).expect("default pass must be registered");
        assert_eq!(pass.name(), name);
    }
    assert!(pass_by_name("no-such-pass").is_none());
}

#[test]
fn validate_each_pass_traces_structural_validations() {
    let options = DriverOptions {
        validate_each_pass: true,
        ..Default::default()
    };
    // Imperfect nest: perfection applies (structural), then coalesce.
    let out = Driver::new(options)
        .compile(
            "
            array A[6][4];
            array R[6];
            doall i = 1..6 {
                R[i] = i * 2;
                doall j = 1..4 {
                    A[i][j] = i + j;
                }
            }
            ",
        )
        .unwrap();
    assert_eq!(out.coalesced.len(), 1, "{:?}", out.skipped);
    let validations: Vec<&str> = out
        .trace
        .events
        .iter()
        .filter(|e| e.outcome == TraceOutcome::Validated && e.nest == Some(0))
        .map(|e| e.pass.as_str())
        .collect();
    assert_eq!(validations, vec!["validate:perfect", "validate:coalesce"]);
    // The trace (with the new event names) still round-trips.
    let text = out.trace.to_json_string();
    assert_eq!(
        lc_driver::PipelineTrace::from_json_string(&text).unwrap(),
        out.trace
    );
}

#[test]
fn pass_rewrites_summarizes_the_pipeline() {
    let out = Driver::default()
        .compile(
            "
            array A[6][4];
            doall i = 2..7 {
                doall j = 1..4 {
                    A[i - 1][j] = i + j;
                }
            }
            ",
        )
        .unwrap();
    let rewrites = out.trace.pass_rewrites();
    let get = |name: &str| {
        rewrites
            .iter()
            .find(|(p, _)| *p == name)
            .map(|(_, n)| *n)
            .unwrap_or_else(|| panic!("pass {name} missing from {rewrites:?}"))
    };
    assert_eq!(get("normalize"), 1, "one offset header renormalized");
    assert_eq!(get("coalesce"), 2, "two levels collapsed");
}
