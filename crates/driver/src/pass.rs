//! The pass abstraction and the standard pipeline's passes.
//!
//! Each pass sees one top-level nest at a time through a [`PassCx`]: the
//! driver options plus the nest's [`NestAnalyses`] cache. Passes report a
//! [`PassOutcome`] — applied / skipped-with-diagnostic / no-op — which
//! the [`crate::PassManager`] timestamps into the
//! [`crate::trace::PipelineTrace`].
//!
//! The standard pipeline order follows the paper's presentation, with
//! the static analyzer in front:
//!
//! 1. [`AnalyzePass`] — run the `lc-lint` checks (race, overflow,
//!    non-affine, dead-induction, reduction) and veto the nest when a
//!    `deny`-severity lint fires;
//! 2. [`NormalizePass`] — put headers in `1..=N step 1` form (cached);
//! 3. [`PerfectionPass`] — sink prologue/epilogue statements to perfect
//!    the nest (guarded statement distribution);
//! 4. [`InterchangePass`] — move a serial outermost level inward when
//!    the level below it is parallel, so DOALL levels sit outermost;
//! 5. [`AdvisePass`] — pick the best legal collapse band analytically;
//! 6. [`CoalescePass`] — the transformation itself, with the symbolic
//!    fallback for runtime trip counts;
//! 7. [`StrengthReducePass`] — report the recovery-CSE savings.
//!
//! Passes 3–5 are *enabling* passes: their failures are recorded as
//! skips, never escalated — a nest that cannot be perfected may still
//! coalesce as-is.

use std::time::Instant;

use lc_ir::analysis::nest::Nest;
use lc_ir::stmt::Stmt;
use lc_ir::{Error, Result, SkipReason};
use lc_lint::{ConstEnv, Finding, LintCode, NestLinter, Severity};
use lc_xform::coalesce::{coalesce_band, CoalesceInfo, CoalesceResult};
use lc_xform::interchange::interchange;
use lc_xform::normalize::require_normalized;
use lc_xform::perfect::perfect_recursively;
use lc_xform::recovery::per_iteration_cost;

use crate::cache::NestAnalyses;
use crate::{DriverOptions, Skip};

/// What a pass did. Mirrors [`crate::trace::TraceOutcome`] minus the
/// program-level `Validated` (validation is a manager step, not a pass).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PassOutcome {
    /// The pass rewrote something.
    Applied {
        /// Pass-specific count of rewrites performed.
        rewrites: u64,
    },
    /// The pass declined with a diagnostic.
    Skipped(SkipReason),
    /// Nothing to do.
    Noop,
    /// The `analyze` stage ran its lints. The manager folds the
    /// findings into [`crate::DriverOutput::lints`] and emits one
    /// `lint:LCxxx` trace event per timing entry.
    Analyzed {
        /// Every finding the enabled lints produced on this nest.
        findings: Vec<Finding>,
        /// Wall time per lint that ran, in pipeline order (nanoseconds,
        /// always ≥ 1).
        per_lint: Vec<(LintCode, u64)>,
    },
}

/// Context handed to every pass: the options and this nest's memoized
/// analyses.
pub struct PassCx<'a> {
    /// Driver configuration.
    pub options: &'a DriverOptions,
    /// Cached analyses for the nest being compiled.
    pub cache: &'a mut NestAnalyses,
}

/// The final disposition of a nest, produced by [`CoalescePass`].
#[derive(Debug, Clone)]
pub enum Decision {
    /// The nest was rewritten into these statements.
    Coalesced {
        /// Replacement statements (preamble + loop for the symbolic
        /// path, a single loop otherwise).
        stmts: Vec<Stmt>,
        /// What the coalescing did.
        info: CoalesceInfo,
    },
    /// The nest is left untouched, with the diagnostic.
    Skipped(Skip),
}

/// Mutable per-nest state threaded through the pipeline.
#[derive(Debug)]
pub struct NestState {
    /// Index of the nest's statement in the program body.
    pub index: usize,
    /// Band chosen by [`AdvisePass`], overriding the configured band.
    pub band_override: Option<(usize, usize)>,
    /// Set once [`CoalescePass`] decides; later passes become no-ops.
    /// [`AnalyzePass`] also sets it when a `deny`-severity lint fires.
    pub decision: Option<Decision>,
    /// Constant-propagation environment from the straight-line scalar
    /// assignments preceding this nest, consumed by [`AnalyzePass`]
    /// (LC002's bounded-symbolic trip counts).
    pub env: ConstEnv,
}

impl NestState {
    /// Fresh state for the nest at body position `index`, with no known
    /// scalar constants.
    pub fn new(index: usize) -> Self {
        NestState::with_env(index, ConstEnv::new())
    }

    /// Fresh state with the constant environment the statements before
    /// the nest established.
    pub fn with_env(index: usize, env: ConstEnv) -> Self {
        NestState {
            index,
            band_override: None,
            decision: None,
            env,
        }
    }
}

/// A pipeline pass. Implementations must be stateless (`&self`) so one
/// [`crate::PassManager`] can serve concurrent batch workers.
pub trait Pass: Send + Sync {
    /// Stable name used in traces and reports.
    fn name(&self) -> &'static str;
    /// Run over one nest. `Err` aborts the whole compilation; passes
    /// that merely cannot apply return `Ok(PassOutcome::Skipped(..))`.
    fn run(&self, state: &mut NestState, cx: &mut PassCx<'_>) -> Result<PassOutcome>;
    /// Whether an `Applied` outcome means the program's code changed
    /// (as opposed to analysis state or advice). Structural passes are
    /// eligible for the manager's per-pass validation hook.
    fn structural(&self) -> bool {
        false
    }
}

/// Pass 0: static analysis (`lc-lint`).
///
/// Runs every lint enabled in [`DriverOptions::lints`] over the nest
/// (including sub-nests below imperfect levels), timing each lint
/// individually. Findings never abort the compilation; a lint
/// configured at `deny` severity instead *vetoes the nest* — the pass
/// records a [`Decision::Skipped`] with
/// [`SkipReason::LintDenied`], so every later pass no-ops and the nest
/// is emitted untransformed. This is the conservative reading of a
/// denied lint: refusing to transform is always safe, transforming a
/// racy nest is not.
pub struct AnalyzePass;

impl Pass for AnalyzePass {
    fn name(&self) -> &'static str {
        "analyze"
    }

    fn run(&self, state: &mut NestState, cx: &mut PassCx<'_>) -> Result<PassOutcome> {
        if state.decision.is_some() {
            return Ok(PassOutcome::Noop);
        }
        let set = &cx.options.lints;
        if set.all_allowed() {
            return Ok(PassOutcome::Noop);
        }
        let mut linter = NestLinter::new(cx.cache.current(), state.index, &state.env);
        let mut findings = Vec::new();
        let mut per_lint = Vec::new();
        for code in LintCode::ALL {
            let sev = set.level(code);
            if sev == Severity::Allow {
                continue;
            }
            let start = Instant::now();
            findings.extend(linter.run(code, sev));
            per_lint.push((code, start.elapsed().as_nanos().max(1) as u64));
        }
        if let Some(deny) = findings.iter().find(|f| f.severity == Severity::Deny) {
            state.decision = Some(Decision::Skipped(Skip {
                nest: state.index,
                reason: SkipReason::LintDenied {
                    code: deny.code.code().to_string(),
                    message: deny.message.clone(),
                },
                fallback: None,
            }));
        }
        Ok(PassOutcome::Analyzed { findings, per_lint })
    }
}

/// Pass 1: loop normalization (via the analysis cache).
///
/// Reports how many headers needed rewriting; a symbolic-bound failure
/// is recorded here but the final constant-vs-symbolic routing happens
/// in [`CoalescePass`], exactly as in the facade pipeline.
pub struct NormalizePass;

impl Pass for NormalizePass {
    fn name(&self) -> &'static str {
        "normalize"
    }

    fn run(&self, state: &mut NestState, cx: &mut PassCx<'_>) -> Result<PassOutcome> {
        if state.decision.is_some() {
            return Ok(PassOutcome::Noop);
        }
        if !cx.options.coalesce.auto_normalize {
            // The caller promised normalized input; just check.
            return match require_normalized(&cx.cache.nest().loops) {
                Ok(()) => Ok(PassOutcome::Noop),
                Err(Error::Unsupported(r)) => Ok(PassOutcome::Skipped(r)),
                Err(e) => Err(e),
            };
        }
        let unnormalized = cx
            .cache
            .nest()
            .loops
            .iter()
            .filter(|h| !h.is_normalized())
            .count() as u64;
        match cx.cache.normalized() {
            Ok(_) if unnormalized == 0 => Ok(PassOutcome::Noop),
            Ok(_) => Ok(PassOutcome::Applied {
                rewrites: unnormalized,
            }),
            Err(Error::Unsupported(r)) => Ok(PassOutcome::Skipped(r)),
            Err(e) => Err(e),
        }
    }
}

/// Pass 2: nest perfection (sink prologue/epilogue statements into the
/// inner loop under first/last-iteration guards). Structural: a rewrite
/// invalidates the nest's cached analyses.
pub struct PerfectionPass;

impl Pass for PerfectionPass {
    fn name(&self) -> &'static str {
        "perfect"
    }

    fn structural(&self) -> bool {
        true
    }

    fn run(&self, state: &mut NestState, cx: &mut PassCx<'_>) -> Result<PassOutcome> {
        if state.decision.is_some() || !cx.options.enable_perfection {
            return Ok(PassOutcome::Noop);
        }
        match perfect_recursively(cx.cache.current()) {
            Ok(p) if p == *cx.cache.current() => Ok(PassOutcome::Noop),
            Ok(p) => {
                cx.cache.rewrite(p);
                Ok(PassOutcome::Applied { rewrites: 1 })
            }
            Err(Error::Unsupported(r)) => Ok(PassOutcome::Skipped(r)),
            // An enabling pass never aborts the compilation: an
            // unperfectable nest may still coalesce (or skip) as-is.
            Err(e) => Ok(PassOutcome::Skipped(SkipReason::Other(e.to_string()))),
        }
    }
}

/// Pass 3: loop interchange. When the outermost level carries a
/// dependence but the level below it is parallel, swap them so the
/// parallel level moves outward — the classical enabling step the paper
/// positions coalescing against. Structural: invalidates the cache.
pub struct InterchangePass;

impl Pass for InterchangePass {
    fn name(&self) -> &'static str {
        "interchange"
    }

    fn structural(&self) -> bool {
        true
    }

    fn run(&self, state: &mut NestState, cx: &mut PassCx<'_>) -> Result<PassOutcome> {
        if state.decision.is_some() || !cx.options.enable_interchange {
            return Ok(PassOutcome::Noop);
        }
        let depth = cx.cache.nest().depth();
        if depth < 2 || cx.cache.normalized().is_err() {
            // Depth-1 or symbolic nests: nothing to interchange here.
            return Ok(PassOutcome::Noop);
        }
        let carried: Vec<bool> = match cx.cache.deps() {
            Ok(d) => (0..depth).map(|k| d.carried_at(k)).collect(),
            // Let the coalesce pass surface analysis problems.
            Err(_) => return Ok(PassOutcome::Noop),
        };
        let Some(level) = (0..depth - 1).find(|&k| carried[k] && !carried[k + 1]) else {
            return Ok(PassOutcome::Noop);
        };
        match interchange(cx.cache.current(), level) {
            Ok(l) => {
                cx.cache.rewrite(l);
                Ok(PassOutcome::Applied { rewrites: 1 })
            }
            Err(Error::Unsupported(r)) => Ok(PassOutcome::Skipped(r)),
            Err(e) => Ok(PassOutcome::Skipped(SkipReason::Other(e.to_string()))),
        }
    }
}

/// Pass 4: analytic band advice (only when [`DriverOptions::advise`] is
/// set). Evaluates every contiguous DOALL-legal band under the machine
/// model and overrides the configured band with the winner.
pub struct AdvisePass;

impl Pass for AdvisePass {
    fn name(&self) -> &'static str {
        "advise"
    }

    fn run(&self, state: &mut NestState, cx: &mut PassCx<'_>) -> Result<PassOutcome> {
        if state.decision.is_some() {
            return Ok(PassOutcome::Noop);
        }
        let Some(params) = &cx.options.advise else {
            return Ok(PassOutcome::Noop);
        };
        let dims = match cx.cache.normalized() {
            Ok(n) => match n.trip_counts() {
                Some(d) => d,
                None => return Ok(PassOutcome::Skipped(SkipReason::SymbolicBounds)),
            },
            Err(_) => return Ok(PassOutcome::Skipped(SkipReason::SymbolicBounds)),
        };
        let legal: Vec<bool> = match cx.cache.deps() {
            Ok(d) => (0..dims.len()).map(|k| !d.carried_at(k)).collect(),
            Err(_) => return Ok(PassOutcome::Noop),
        };
        if !legal.iter().any(|&x| x) {
            return Ok(PassOutcome::Skipped(SkipReason::NothingLegal));
        }
        let scheme = cx.options.coalesce.scheme;
        let advice = lc_sched::advise::advise(&dims, &legal, params, &|band| {
            per_iteration_cost(scheme, band)
        });
        state.band_override = Some(advice.band);
        Ok(PassOutcome::Applied {
            rewrites: (advice.band.1 - advice.band.0) as u64,
        })
    }
}

/// Pass 5: the coalescing transformation, constant path first with the
/// symbolic fallback — byte-for-byte the facade pipeline's routing, but
/// with every analysis drawn from the cache instead of recomputed.
pub struct CoalescePass;

impl CoalescePass {
    /// Run the constant-trip-count path with cached analyses. Replicates
    /// `coalesce_loop` = normalize (cached) + `coalesce_band`, injecting
    /// the cached dependence analysis exactly when `coalesce_band` would
    /// compute one (legality checking on, band valid).
    fn constant_path(
        cx: &mut PassCx<'_>,
        opts: &lc_xform::coalesce::CoalesceOptions,
        depth: usize,
    ) -> Result<CoalesceResult> {
        let (s, e) = opts.levels.unwrap_or((0, depth));
        let valid_band = s < e && e <= depth;
        if opts.auto_normalize {
            cx.cache.normalized()?;
        } else {
            require_normalized(&cx.cache.nest().loops)?;
        }
        let needs_deps = opts.check_legality && valid_band;
        if needs_deps {
            cx.cache.deps()?;
        }
        let nest: &Nest = if opts.auto_normalize {
            cx.cache.normalized_ref()
        } else {
            cx.cache.nest_ref()
        };
        let deps = if needs_deps {
            Some(cx.cache.deps_ref())
        } else {
            None
        };
        coalesce_band(nest, deps, opts)
    }
}

impl Pass for CoalescePass {
    fn name(&self) -> &'static str {
        "coalesce"
    }

    fn structural(&self) -> bool {
        true
    }

    fn run(&self, state: &mut NestState, cx: &mut PassCx<'_>) -> Result<PassOutcome> {
        if state.decision.is_some() {
            return Ok(PassOutcome::Noop);
        }
        let depth = cx.cache.nest().depth();
        let mut opts = cx.options.coalesce.clone().clamped_to_depth(depth);
        if let Some(band) = state.band_override {
            opts.levels = Some(band);
        }
        let band = opts.levels.unwrap_or((0, depth));
        let width = band.1.saturating_sub(band.0) as u64;

        match Self::constant_path(cx, &opts, depth) {
            Ok(result) => {
                state.decision = Some(Decision::Coalesced {
                    stmts: result.stmts(),
                    info: result.info,
                });
                Ok(PassOutcome::Applied { rewrites: width })
            }
            Err(Error::Unsupported(reason)) if reason.is_symbolic() => {
                // Normalization needs constant trip counts; retry on the
                // raw nest, where the per-level emitter computes symbolic
                // strides at run time.
                match coalesce_band(cx.cache.nest_ref(), None, &opts) {
                    Ok(result) => {
                        state.decision = Some(Decision::Coalesced {
                            stmts: result.stmts(),
                            info: result.info,
                        });
                        Ok(PassOutcome::Applied { rewrites: width })
                    }
                    Err(Error::Unsupported(fallback)) => {
                        state.decision = Some(Decision::Skipped(Skip {
                            nest: state.index,
                            reason: reason.clone(),
                            fallback: Some(fallback),
                        }));
                        Ok(PassOutcome::Skipped(reason))
                    }
                    Err(other) => Err(other),
                }
            }
            Err(Error::Unsupported(reason)) => {
                state.decision = Some(Decision::Skipped(Skip {
                    nest: state.index,
                    reason: reason.clone(),
                    fallback: None,
                }));
                Ok(PassOutcome::Skipped(reason))
            }
            Err(other) => Err(other),
        }
    }
}

/// Pass 6: recovery strength reduction reporting.
///
/// The common-subexpression extraction over recovery statements is fused
/// into `coalesce_band`'s emission (it needs the fresh-temp namespace
/// computed there), so this pass does not rewrite — it reports the
/// per-iteration cost units the CSE saved, making the paper's
/// strength-reduction remark visible in the trace.
pub struct StrengthReducePass;

impl Pass for StrengthReducePass {
    fn name(&self) -> &'static str {
        "strength-reduce"
    }

    fn run(&self, state: &mut NestState, cx: &mut PassCx<'_>) -> Result<PassOutcome> {
        if !cx.options.coalesce.strength_reduce {
            return Ok(PassOutcome::Noop);
        }
        match &state.decision {
            Some(Decision::Coalesced { info, .. }) if !info.dims.is_empty() => {
                let naive = per_iteration_cost(info.scheme, &info.dims).units();
                let saved = naive.saturating_sub(info.recovery_cost_per_iteration);
                Ok(PassOutcome::Applied { rewrites: saved })
            }
            _ => Ok(PassOutcome::Noop),
        }
    }
}
