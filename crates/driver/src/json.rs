//! A minimal JSON value type with a printer and parser.
//!
//! The driver serializes [`crate::trace::PipelineTrace`] and
//! [`crate::Skip`] diagnostics to JSON so external tooling can consume
//! them. The workspace builds offline with no registry access, so rather
//! than depending on `serde`/`serde_json` this module hand-rolls the tiny
//! subset the driver needs: null, booleans, 64-bit integers, strings,
//! arrays, and objects. Floats are deliberately unsupported — every
//! number the driver emits (counters, nanosecond timings, nest indices)
//! is integral, and keeping integers exact makes round-trips lossless.

use std::fmt;

/// A JSON value. Object keys keep insertion order so output is
/// deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (the driver never emits floats).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor from pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Required-field lookup with a readable error.
    pub fn field<'a>(&'a self, key: &str) -> Result<&'a Json, String> {
        self.get(key)
            .ok_or_else(|| format!("missing field `{key}`"))
    }

    /// Required integer field.
    pub fn int_field(&self, key: &str) -> Result<i64, String> {
        self.field(key)?
            .as_int()
            .ok_or_else(|| format!("field `{key}` is not an integer"))
    }

    /// Required string field.
    pub fn str_field(&self, key: &str) -> Result<&str, String> {
        self.field(key)?
            .as_str()
            .ok_or_else(|| format!("field `{key}` is not a string"))
    }

    /// Parse a JSON document.
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(format!("floats are unsupported (byte {})", self.pos));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|e| format!("bad integer `{text}`: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = std::str::from_utf8(&self.bytes[self.pos..])
                .map_err(|_| "invalid UTF-8".to_string())?;
            let mut chars = rest.char_indices();
            let (_, c) = chars
                .next()
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += c.len_utf8();
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "bad \\u code point".to_string())?,
                            );
                        }
                        _ => return Err(format!("unknown escape `\\{}`", esc as char)),
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Json::obj(vec![
            ("a", Json::Int(-42)),
            ("b", Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("s", Json::Str("line\n\"quoted\" \\ tab\t".into())),
            ("o", Json::obj(vec![("inner", Json::Int(7))])),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_floats_and_garbage() {
        assert!(Json::parse("1.5").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} x").is_err());
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"k\" : [ 1 , \"\\u0041\\n\" ] } ").unwrap();
        assert_eq!(
            v.field("k").unwrap().as_arr().unwrap()[1],
            Json::Str("A\n".into())
        );
    }
}
