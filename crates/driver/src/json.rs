//! A minimal JSON value type with a printer and parser.
//!
//! The driver serializes [`crate::trace::PipelineTrace`] and
//! [`crate::Skip`] diagnostics to JSON so external tooling can consume
//! them. The workspace builds offline with no registry access, so rather
//! than depending on `serde`/`serde_json` this module hand-rolls the tiny
//! subset the driver needs: null, booleans, 64-bit integers, strings,
//! arrays, and objects. Floats are deliberately unsupported — every
//! number the driver emits (counters, nanosecond timings, nest indices)
//! is integral, and keeping integers exact makes round-trips lossless.
//!
//! Parsing reports a typed [`ParseError`]; in particular integer
//! literals outside `i64` are rejected with
//! [`ParseError::IntOutOfRange`] rather than whatever `from_str` would
//! say, and `\uXXXX` escapes understand UTF-16 surrogate pairs (a lone
//! surrogate is [`ParseError::LoneSurrogate`]).

use std::fmt;

/// Maximum container nesting depth [`Json::parse`] accepts. The parser
/// is recursive-descent, so without a cap an adversarial document of
/// tens of thousands of `[` would exhaust the thread stack — and a
/// stack overflow aborts the whole process, which the compile server
/// (whose `/batch` route parses untrusted JSON on connection threads)
/// cannot tolerate. Beyond this depth parsing reports
/// [`ParseError::TooDeep`]. Every document the driver itself emits
/// nests a handful of levels.
pub const MAX_JSON_DEPTH: usize = 256;

/// A JSON value. Object keys keep insertion order so output is
/// deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (the driver never emits floats).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// Why a JSON document failed to parse. Every variant carries the byte
/// offset where the problem was detected (except end-of-input errors,
/// which have no position past the end to point at).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// An all-digit integer literal that does not fit in `i64`.
    IntOutOfRange {
        /// The offending literal text.
        literal: String,
        /// Byte offset of the literal.
        at: usize,
    },
    /// A number with a fraction or exponent (floats are unsupported).
    Float {
        /// Byte offset of the `.`/`e`/`E`.
        at: usize,
    },
    /// A misspelled `null` / `true` / `false`.
    InvalidLiteral {
        /// Byte offset of the literal.
        at: usize,
    },
    /// A byte that cannot start or continue a value.
    Unexpected {
        /// Byte offset of the unexpected input.
        at: usize,
    },
    /// A specific punctuation byte was required.
    Expected {
        /// What was required (rendered for messages, e.g. "`,` or `]`").
        what: &'static str,
        /// Byte offset where it was required.
        at: usize,
    },
    /// Input ended inside a string literal.
    UnterminatedString,
    /// An unknown `\x` escape.
    UnknownEscape {
        /// The escaped byte, as a char.
        escape: char,
    },
    /// A `\u` escape that is truncated or not four hex digits.
    BadUnicodeEscape {
        /// Byte offset of the escape payload.
        at: usize,
    },
    /// A UTF-16 surrogate (`\uD800`–`\uDFFF`) without its partner: a
    /// high surrogate not followed by a low one, or a bare low
    /// surrogate.
    LoneSurrogate {
        /// The surrogate code unit.
        code: u16,
    },
    /// Bytes after the end of the document.
    TrailingInput {
        /// Byte offset of the first trailing byte.
        at: usize,
    },
    /// A string literal containing invalid UTF-8.
    InvalidUtf8,
    /// Containers nested deeper than [`MAX_JSON_DEPTH`].
    TooDeep {
        /// The depth limit that was exceeded.
        limit: usize,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::IntOutOfRange { literal, at } => {
                write!(f, "integer `{literal}` out of i64 range (byte {at})")
            }
            ParseError::Float { at } => write!(f, "floats are unsupported (byte {at})"),
            ParseError::InvalidLiteral { at } => write!(f, "invalid literal at byte {at}"),
            ParseError::Unexpected { at } => write!(f, "unexpected input at byte {at}"),
            ParseError::Expected { what, at } => write!(f, "expected {what} at byte {at}"),
            ParseError::UnterminatedString => write!(f, "unterminated string"),
            ParseError::UnknownEscape { escape } => write!(f, "unknown escape `\\{escape}`"),
            ParseError::BadUnicodeEscape { at } => write!(f, "bad \\u escape at byte {at}"),
            ParseError::LoneSurrogate { code } => {
                write!(f, "lone UTF-16 surrogate \\u{code:04x}")
            }
            ParseError::TrailingInput { at } => write!(f, "trailing input at byte {at}"),
            ParseError::InvalidUtf8 => write!(f, "invalid UTF-8 in string"),
            ParseError::TooDeep { limit } => {
                write!(f, "containers nested deeper than {limit} levels")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<ParseError> for String {
    fn from(e: ParseError) -> String {
        e.to_string()
    }
}

impl Json {
    /// Object constructor from pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Required-field lookup with a readable error.
    pub fn field<'a>(&'a self, key: &str) -> Result<&'a Json, String> {
        self.get(key)
            .ok_or_else(|| format!("missing field `{key}`"))
    }

    /// Required integer field.
    pub fn int_field(&self, key: &str) -> Result<i64, String> {
        self.field(key)?
            .as_int()
            .ok_or_else(|| format!("field `{key}` is not an integer"))
    }

    /// Required string field.
    pub fn str_field(&self, key: &str) -> Result<&str, String> {
        self.field(key)?
            .as_str()
            .ok_or_else(|| format!("field `{key}` is not a string"))
    }

    /// Parse a JSON document.
    pub fn parse(src: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(ParseError::TrailingInput { at: p.pos });
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, what: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ParseError::Expected { what, at: self.pos })
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(ParseError::InvalidLiteral { at: self.pos })
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.nested(Self::array),
            Some(b'{') => self.nested(Self::object),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(ParseError::Unexpected { at: self.pos }),
        }
    }

    /// Bump the container depth around `[`/`{` recursion, rejecting
    /// documents nested beyond [`MAX_JSON_DEPTH`].
    fn nested(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<Json, ParseError>,
    ) -> Result<Json, ParseError> {
        self.depth += 1;
        let r = if self.depth > MAX_JSON_DEPTH {
            Err(ParseError::TooDeep {
                limit: MAX_JSON_DEPTH,
            })
        } else {
            f(self)
        };
        self.depth -= 1;
        r
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            // A bare `-` with no digits.
            return Err(ParseError::Unexpected { at: self.pos });
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(ParseError::Float { at: self.pos });
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        // The literal is sign + digits only, so the sole possible
        // `from_str` failure is i64 overflow — report it as such instead
        // of leaking `ParseIntError`'s message.
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|_| ParseError::IntOutOfRange {
                literal: text.to_string(),
                at: start,
            })
    }

    /// Four hex digits of a `\u` escape (the `\u` itself already eaten).
    fn hex4(&mut self) -> Result<u32, ParseError> {
        let at = self.pos;
        if self.pos + 4 > self.bytes.len() {
            return Err(ParseError::BadUnicodeEscape { at });
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| ParseError::BadUnicodeEscape { at })?;
        // `from_str_radix` tolerates a leading `+`; JSON does not.
        if !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(ParseError::BadUnicodeEscape { at });
        }
        let code = u32::from_str_radix(hex, 16).map_err(|_| ParseError::BadUnicodeEscape { at })?;
        self.pos += 4;
        Ok(code)
    }

    /// A `\uXXXX` escape, combining UTF-16 surrogate pairs into their
    /// code point (`\ud83d\ude00` → 😀). Unpaired surrogates are typed
    /// errors, not replacement characters.
    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let code = self.hex4()?;
        if (0xDC00..=0xDFFF).contains(&code) {
            return Err(ParseError::LoneSurrogate { code: code as u16 });
        }
        if (0xD800..=0xDBFF).contains(&code) {
            let high = code;
            if self.peek() != Some(b'\\') || self.bytes.get(self.pos + 1) != Some(&b'u') {
                return Err(ParseError::LoneSurrogate { code: high as u16 });
            }
            self.pos += 2;
            let low = self.hex4()?;
            if !(0xDC00..=0xDFFF).contains(&low) {
                return Err(ParseError::LoneSurrogate { code: high as u16 });
            }
            let combined = 0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00);
            // Surrogate-pair arithmetic lands in 0x10000..=0x10FFFF,
            // which is always a valid char.
            return Ok(char::from_u32(combined).unwrap());
        }
        // A BMP non-surrogate code unit is always a valid char.
        Ok(char::from_u32(code).unwrap())
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "`\"`")?;
        let mut out = String::new();
        loop {
            let rest = std::str::from_utf8(&self.bytes[self.pos..])
                .map_err(|_| ParseError::InvalidUtf8)?;
            let mut chars = rest.char_indices();
            let (_, c) = chars.next().ok_or(ParseError::UnterminatedString)?;
            self.pos += c.len_utf8();
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let esc = self.peek().ok_or(ParseError::UnterminatedString)?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => {
                            return Err(ParseError::UnknownEscape {
                                escape: esc as char,
                            })
                        }
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[', "`[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => {
                    return Err(ParseError::Expected {
                        what: "`,` or `]`",
                        at: self.pos,
                    })
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{', "`{`")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "`:`")?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => {
                    return Err(ParseError::Expected {
                        what: "`,` or `}`",
                        at: self.pos,
                    })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Json::obj(vec![
            ("a", Json::Int(-42)),
            ("b", Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("s", Json::Str("line\n\"quoted\" \\ tab\t".into())),
            ("o", Json::obj(vec![("inner", Json::Int(7))])),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_floats_and_garbage() {
        assert!(matches!(
            Json::parse("1.5"),
            Err(ParseError::Float { at: 1 })
        ));
        assert!(Json::parse("[1,]").is_err());
        assert!(matches!(
            Json::parse("{\"a\":1} x"),
            Err(ParseError::TrailingInput { .. })
        ));
        assert!(matches!(
            Json::parse("-"),
            Err(ParseError::Unexpected { .. })
        ));
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"k\" : [ 1 , \"\\u0041\\n\" ] } ").unwrap();
        assert_eq!(
            v.field("k").unwrap().as_arr().unwrap()[1],
            Json::Str("A\n".into())
        );
    }

    #[test]
    fn i64_boundaries_parse_exactly() {
        assert_eq!(
            Json::parse("-9223372036854775808").unwrap(),
            Json::Int(i64::MIN)
        );
        assert_eq!(
            Json::parse("9223372036854775807").unwrap(),
            Json::Int(i64::MAX)
        );
    }

    #[test]
    fn out_of_range_integers_are_typed_errors() {
        assert_eq!(
            Json::parse("9223372036854775808"),
            Err(ParseError::IntOutOfRange {
                literal: "9223372036854775808".into(),
                at: 0,
            })
        );
        assert_eq!(
            Json::parse("[-9223372036854775809]"),
            Err(ParseError::IntOutOfRange {
                literal: "-9223372036854775809".into(),
                at: 1,
            })
        );
        // A huge literal, way past u64 too.
        assert!(matches!(
            Json::parse("123456789012345678901234567890"),
            Err(ParseError::IntOutOfRange { .. })
        ));
    }

    #[test]
    fn surrogate_pairs_combine() {
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("😀".into())
        );
        // Printer emits astral chars verbatim; the parser reads them back.
        let v = Json::Str("a😀b\u{10FFFF}".into());
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn lone_surrogates_are_typed_errors() {
        assert_eq!(
            Json::parse("\"\\ud83d\""),
            Err(ParseError::LoneSurrogate { code: 0xD83D })
        );
        assert_eq!(
            Json::parse("\"\\udc00\""),
            Err(ParseError::LoneSurrogate { code: 0xDC00 })
        );
        // High surrogate followed by a non-surrogate escape.
        assert_eq!(
            Json::parse("\"\\ud800\\u0041\""),
            Err(ParseError::LoneSurrogate { code: 0xD800 })
        );
    }

    #[test]
    fn deeply_nested_arrays_are_rejected_not_overflowed() {
        let depth = 100_000;
        let src = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        assert_eq!(
            Json::parse(&src),
            Err(ParseError::TooDeep {
                limit: MAX_JSON_DEPTH
            })
        );
        // Same for objects.
        let mut src = String::new();
        for _ in 0..depth {
            src.push_str("{\"k\":");
        }
        assert!(matches!(Json::parse(&src), Err(ParseError::TooDeep { .. })));
    }

    #[test]
    fn nesting_below_the_limit_parses() {
        let depth = MAX_JSON_DEPTH;
        let src = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        assert!(Json::parse(&src).is_ok());
        let src = format!("{}1{}", "[".repeat(depth + 1), "]".repeat(depth + 1));
        assert!(Json::parse(&src).is_err());
    }

    #[test]
    fn truncated_unicode_escapes_are_typed_errors() {
        assert!(matches!(
            Json::parse("\"\\u00\""),
            Err(ParseError::BadUnicodeEscape { .. })
        ));
        assert!(matches!(
            Json::parse("\"\\u\""),
            Err(ParseError::BadUnicodeEscape { .. })
        ));
    }
}
