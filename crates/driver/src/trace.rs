//! Per-pass observability: timed, serializable pipeline traces.
//!
//! Every pass invocation the [`crate::PassManager`] makes is recorded as
//! a [`TraceEvent`]: which nest, which pass, what happened
//! ([`TraceOutcome`]), and how long it took (nanoseconds, clamped to a
//! minimum of 1 so "this pass ran" is always distinguishable from "this
//! pass never ran"). The whole [`PipelineTrace`] serializes to JSON (see
//! [`crate::json`] for why not serde) and back, and renders as a
//! human-readable report.

use std::fmt::Write as _;

use lc_ir::{BoundPart, SkipReason, Symbol};

use crate::cache::CacheStats;
use crate::json::Json;

/// What a pass did to one nest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOutcome {
    /// The pass rewrote something; `rewrites` counts the pass's own unit
    /// of work (headers normalized, levels coalesced, cost units saved).
    Applied {
        /// Pass-specific rewrite count.
        rewrites: u64,
    },
    /// The pass declined, with a typed diagnostic.
    Skipped {
        /// Why the pass did not apply.
        reason: SkipReason,
    },
    /// The pass ran and had nothing to do.
    Noop,
    /// A validation step ran and the program passed.
    Validated,
    /// The `analyze` stage (or one of its `lint:LCxxx` sub-steps) ran.
    Analyzed {
        /// Findings reported.
        findings: u64,
        /// Findings at `deny` severity (each vetoes its nest).
        denied: u64,
    },
}

/// One timed pass invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Index of the nest in the program body, or `None` for
    /// program-level steps (validation).
    pub nest: Option<usize>,
    /// Pass name (`"normalize"`, `"coalesce"`, …).
    pub pass: String,
    /// What happened.
    pub outcome: TraceOutcome,
    /// Wall time of the invocation in nanoseconds (always ≥ 1).
    pub nanos: u64,
}

/// The full record of one compilation: every pass event, the aggregated
/// analysis-cache counters, and total wall time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineTrace {
    /// Pass events in execution order.
    pub events: Vec<TraceEvent>,
    /// Analysis-cache counters summed over all nests.
    pub cache: CacheStats,
    /// Total wall time of the compilation in nanoseconds.
    pub total_nanos: u64,
}

impl PipelineTrace {
    /// Distinct pass names in first-seen order.
    pub fn passes(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for e in &self.events {
            if !out.contains(&e.pass.as_str()) {
                out.push(&e.pass);
            }
        }
        out
    }

    /// Events recorded for one nest.
    pub fn events_for(&self, nest: usize) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.nest == Some(nest))
    }

    /// Names of passes that reported [`TraceOutcome::Applied`] on `nest`.
    pub fn applied_passes(&self, nest: usize) -> Vec<&str> {
        self.events_for(nest)
            .filter(|e| matches!(e.outcome, TraceOutcome::Applied { .. }))
            .map(|e| e.pass.as_str())
            .collect()
    }

    /// Total rewrites reported by a pass across all nests.
    pub fn rewrites(&self, pass: &str) -> u64 {
        self.events
            .iter()
            .filter(|e| e.pass == pass)
            .map(|e| match e.outcome {
                TraceOutcome::Applied { rewrites } => rewrites,
                _ => 0,
            })
            .sum()
    }

    /// Per-pass rewrite totals in first-seen order — the pipeline's
    /// work summary, computed from the events (the serialized trace
    /// schema is unchanged). Passes that never applied report `0`.
    pub fn pass_rewrites(&self) -> Vec<(&str, u64)> {
        self.passes()
            .into_iter()
            .map(|p| (p, self.rewrites(p)))
            .collect()
    }

    /// Total time spent in a pass (nanoseconds) across all nests.
    pub fn pass_nanos(&self, pass: &str) -> u64 {
        self.events
            .iter()
            .filter(|e| e.pass == pass)
            .map(|e| e.nanos)
            .sum()
    }

    /// Render a human-readable report: one line per event plus per-pass
    /// and cache summaries.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "pipeline trace ({} events)", self.events.len());
        for e in &self.events {
            let where_ = match e.nest {
                Some(n) => format!("nest {n}"),
                None => "program".to_string(),
            };
            let what = match &e.outcome {
                TraceOutcome::Applied { rewrites } => format!("applied ({rewrites} rewrites)"),
                TraceOutcome::Skipped { reason } => format!("skipped: {reason}"),
                TraceOutcome::Noop => "no-op".to_string(),
                TraceOutcome::Validated => "validated".to_string(),
                TraceOutcome::Analyzed { findings, denied } => {
                    format!("analyzed ({findings} findings, {denied} denied)")
                }
            };
            let _ = writeln!(
                out,
                "  {:<10} {:<16} {:>10}ns  {}",
                where_, e.pass, e.nanos, what
            );
        }
        let _ = writeln!(out, "per-pass totals:");
        for (pass, rewrites) in self.pass_rewrites() {
            let _ = writeln!(
                out,
                "  {:<16} {:>10}ns  {} rewrites",
                pass,
                self.pass_nanos(pass),
                rewrites
            );
        }
        let c = &self.cache;
        let _ = writeln!(
            out,
            "analysis cache: nest {}+{}h, normalize {}+{}h, deps {}+{}h",
            c.nest_computed,
            c.nest_hits,
            c.normalize_computed,
            c.normalize_hits,
            c.deps_computed,
            c.deps_hits
        );
        let _ = writeln!(out, "total: {}ns", self.total_nanos);
        out
    }

    /// Serialize the trace to a JSON document.
    pub fn to_json(&self) -> Json {
        let events = self
            .events
            .iter()
            .map(|e| {
                Json::obj(vec![
                    (
                        "nest",
                        match e.nest {
                            Some(n) => Json::Int(n as i64),
                            None => Json::Null,
                        },
                    ),
                    ("pass", Json::Str(e.pass.clone())),
                    ("outcome", outcome_to_json(&e.outcome)),
                    ("nanos", Json::Int(e.nanos as i64)),
                ])
            })
            .collect();
        let c = &self.cache;
        Json::obj(vec![
            ("events", Json::Arr(events)),
            (
                "cache",
                Json::obj(vec![
                    ("nest_computed", Json::Int(c.nest_computed as i64)),
                    ("nest_hits", Json::Int(c.nest_hits as i64)),
                    ("normalize_computed", Json::Int(c.normalize_computed as i64)),
                    ("normalize_hits", Json::Int(c.normalize_hits as i64)),
                    ("deps_computed", Json::Int(c.deps_computed as i64)),
                    ("deps_hits", Json::Int(c.deps_hits as i64)),
                ]),
            ),
            ("total_nanos", Json::Int(self.total_nanos as i64)),
        ])
    }

    /// Serialize to a JSON string.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Deserialize a trace from [`PipelineTrace::to_json`] output.
    pub fn from_json(v: &Json) -> Result<PipelineTrace, String> {
        let mut events = Vec::new();
        for e in v
            .field("events")?
            .as_arr()
            .ok_or("`events` is not an array")?
        {
            let nest = match e.field("nest")? {
                Json::Null => None,
                Json::Int(n) => Some(*n as usize),
                _ => return Err("`nest` must be null or an integer".into()),
            };
            events.push(TraceEvent {
                nest,
                pass: e.str_field("pass")?.to_string(),
                outcome: outcome_from_json(e.field("outcome")?)?,
                nanos: e.int_field("nanos")? as u64,
            });
        }
        let c = v.field("cache")?;
        let cache = CacheStats {
            nest_computed: c.int_field("nest_computed")? as u64,
            nest_hits: c.int_field("nest_hits")? as u64,
            normalize_computed: c.int_field("normalize_computed")? as u64,
            normalize_hits: c.int_field("normalize_hits")? as u64,
            deps_computed: c.int_field("deps_computed")? as u64,
            deps_hits: c.int_field("deps_hits")? as u64,
        };
        Ok(PipelineTrace {
            events,
            cache,
            total_nanos: v.int_field("total_nanos")? as u64,
        })
    }

    /// Deserialize from a JSON string.
    pub fn from_json_string(src: &str) -> Result<PipelineTrace, String> {
        PipelineTrace::from_json(&Json::parse(src)?)
    }
}

fn outcome_to_json(o: &TraceOutcome) -> Json {
    match o {
        TraceOutcome::Applied { rewrites } => Json::obj(vec![
            ("kind", Json::Str("applied".into())),
            ("rewrites", Json::Int(*rewrites as i64)),
        ]),
        TraceOutcome::Skipped { reason } => Json::obj(vec![
            ("kind", Json::Str("skipped".into())),
            ("reason", skip_reason_to_json(reason)),
        ]),
        TraceOutcome::Noop => Json::obj(vec![("kind", Json::Str("noop".into()))]),
        TraceOutcome::Validated => Json::obj(vec![("kind", Json::Str("validated".into()))]),
        TraceOutcome::Analyzed { findings, denied } => Json::obj(vec![
            ("kind", Json::Str("analyzed".into())),
            ("findings", Json::Int(*findings as i64)),
            ("denied", Json::Int(*denied as i64)),
        ]),
    }
}

fn outcome_from_json(v: &Json) -> Result<TraceOutcome, String> {
    match v.str_field("kind")? {
        "applied" => Ok(TraceOutcome::Applied {
            rewrites: v.int_field("rewrites")? as u64,
        }),
        "skipped" => Ok(TraceOutcome::Skipped {
            reason: skip_reason_from_json(v.field("reason")?)?,
        }),
        "noop" => Ok(TraceOutcome::Noop),
        "validated" => Ok(TraceOutcome::Validated),
        "analyzed" => Ok(TraceOutcome::Analyzed {
            findings: v.int_field("findings")? as u64,
            denied: v.int_field("denied")? as u64,
        }),
        other => Err(format!("unknown outcome kind `{other}`")),
    }
}

fn bound_part_str(p: BoundPart) -> &'static str {
    match p {
        BoundPart::Lower => "lower",
        BoundPart::Upper => "upper",
        BoundPart::Step => "step",
    }
}

/// Serialize a [`SkipReason`] as a tagged JSON object.
pub fn skip_reason_to_json(r: &SkipReason) -> Json {
    let kind = |k: &str| ("kind", Json::Str(k.into()));
    let sym = |k: &'static str, s: &Symbol| (k, Json::Str(s.as_str().into()));
    match r {
        SkipReason::BandOutOfRange { start, end, depth } => Json::obj(vec![
            kind("band-out-of-range"),
            ("start", Json::Int(*start as i64)),
            ("end", Json::Int(*end as i64)),
            ("depth", Json::Int(*depth as i64)),
        ]),
        SkipReason::CarriedDependence { level, var } => Json::obj(vec![
            kind("carried-dependence"),
            ("level", Json::Int(*level as i64)),
            sym("var", var),
        ]),
        SkipReason::NotDoall { var } => Json::obj(vec![kind("not-doall"), sym("var", var)]),
        SkipReason::NotDoallUnchecked => Json::obj(vec![kind("not-doall-unchecked")]),
        SkipReason::ScalarReduction { var } => {
            Json::obj(vec![kind("scalar-reduction"), sym("var", var)])
        }
        SkipReason::SymbolicBound { var, part } => Json::obj(vec![
            kind("symbolic-bound"),
            sym("var", var),
            ("part", Json::Str(bound_part_str(*part).into())),
        ]),
        SkipReason::SymbolicBounds => Json::obj(vec![kind("symbolic-bounds")]),
        SkipReason::NotNormalized { var } => {
            Json::obj(vec![kind("not-normalized"), sym("var", var)])
        }
        SkipReason::NotUnitNormalized { var } => {
            Json::obj(vec![kind("not-unit-normalized"), sym("var", var)])
        }
        SkipReason::VariantBound { var, dep } => Json::obj(vec![
            kind("variant-bound"),
            sym("var", var),
            sym("dep", dep),
        ]),
        SkipReason::InterchangeOutOfRange { level, depth } => Json::obj(vec![
            kind("interchange-out-of-range"),
            ("level", Json::Int(*level as i64)),
            ("depth", Json::Int(*depth as i64)),
        ]),
        SkipReason::NotRectangular { var, other } => Json::obj(vec![
            kind("not-rectangular"),
            sym("var", var),
            sym("other", other),
        ]),
        SkipReason::InterchangeIllegal { level, array } => Json::obj(vec![
            kind("interchange-illegal"),
            ("level", Json::Int(*level as i64)),
            sym("array", array),
        ]),
        SkipReason::ImperfectNest { found } => Json::obj(vec![
            kind("imperfect-nest"),
            ("found", Json::Int(*found as i64)),
        ]),
        SkipReason::NothingLegal => Json::obj(vec![kind("nothing-legal")]),
        SkipReason::LintDenied { code, message } => Json::obj(vec![
            kind("lint-denied"),
            ("code", Json::Str(code.clone())),
            ("message", Json::Str(message.clone())),
        ]),
        SkipReason::Other(m) => Json::obj(vec![kind("other"), ("message", Json::Str(m.clone()))]),
        // `SkipReason` is #[non_exhaustive]; future variants degrade to a
        // message-only encoding rather than failing to serialize.
        other => Json::obj(vec![
            kind("other"),
            ("message", Json::Str(other.to_string())),
        ]),
    }
}

/// Deserialize a [`SkipReason`] from [`skip_reason_to_json`] output.
pub fn skip_reason_from_json(v: &Json) -> Result<SkipReason, String> {
    let var = |k: &str| -> Result<Symbol, String> { Ok(Symbol::new(v.str_field(k)?)) };
    Ok(match v.str_field("kind")? {
        "band-out-of-range" => SkipReason::BandOutOfRange {
            start: v.int_field("start")? as usize,
            end: v.int_field("end")? as usize,
            depth: v.int_field("depth")? as usize,
        },
        "carried-dependence" => SkipReason::CarriedDependence {
            level: v.int_field("level")? as usize,
            var: var("var")?,
        },
        "not-doall" => SkipReason::NotDoall { var: var("var")? },
        "not-doall-unchecked" => SkipReason::NotDoallUnchecked,
        "scalar-reduction" => SkipReason::ScalarReduction { var: var("var")? },
        "symbolic-bound" => SkipReason::SymbolicBound {
            var: var("var")?,
            part: match v.str_field("part")? {
                "lower" => BoundPart::Lower,
                "upper" => BoundPart::Upper,
                "step" => BoundPart::Step,
                p => return Err(format!("unknown bound part `{p}`")),
            },
        },
        "symbolic-bounds" => SkipReason::SymbolicBounds,
        "not-normalized" => SkipReason::NotNormalized { var: var("var")? },
        "not-unit-normalized" => SkipReason::NotUnitNormalized { var: var("var")? },
        "variant-bound" => SkipReason::VariantBound {
            var: var("var")?,
            dep: var("dep")?,
        },
        "interchange-out-of-range" => SkipReason::InterchangeOutOfRange {
            level: v.int_field("level")? as usize,
            depth: v.int_field("depth")? as usize,
        },
        "not-rectangular" => SkipReason::NotRectangular {
            var: var("var")?,
            other: var("other")?,
        },
        "interchange-illegal" => SkipReason::InterchangeIllegal {
            level: v.int_field("level")? as usize,
            array: var("array")?,
        },
        "imperfect-nest" => SkipReason::ImperfectNest {
            found: v.int_field("found")? as usize,
        },
        "nothing-legal" => SkipReason::NothingLegal,
        "lint-denied" => SkipReason::LintDenied {
            code: v.str_field("code")?.to_string(),
            message: v.str_field("message")?.to_string(),
        },
        "other" => SkipReason::Other(v.str_field("message")?.to_string()),
        other => return Err(format!("unknown skip reason kind `{other}`")),
    })
}

/// Serialize one `lc-lint` [`Finding`](lc_lint::Finding) as a JSON
/// object, mirroring `lc_lint::render::finding_to_json`'s key order so
/// service envelopes and the CLI agree on the schema.
pub fn finding_to_json(f: &lc_lint::Finding) -> Json {
    let opt = |v: Option<usize>| match v {
        Some(n) => Json::Int(n as i64),
        None => Json::Null,
    };
    Json::obj(vec![
        ("code", Json::Str(f.code.code().into())),
        ("slug", Json::Str(f.code.slug().into())),
        ("severity", Json::Str(f.severity.name().into())),
        ("nest", Json::Int(f.nest as i64)),
        ("level", opt(f.level)),
        ("line", opt(f.line)),
        ("message", Json::Str(f.message.clone())),
        (
            "details",
            Json::Obj(
                f.details
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_round_trips_through_json() {
        let trace = PipelineTrace {
            events: vec![
                TraceEvent {
                    nest: Some(0),
                    pass: "normalize".into(),
                    outcome: TraceOutcome::Applied { rewrites: 2 },
                    nanos: 120,
                },
                TraceEvent {
                    nest: Some(0),
                    pass: "coalesce".into(),
                    outcome: TraceOutcome::Skipped {
                        reason: SkipReason::CarriedDependence {
                            level: 1,
                            var: Symbol::new("i"),
                        },
                    },
                    nanos: 340,
                },
                TraceEvent {
                    nest: None,
                    pass: "validate".into(),
                    outcome: TraceOutcome::Validated,
                    nanos: 999,
                },
            ],
            cache: CacheStats {
                nest_computed: 1,
                nest_hits: 3,
                normalize_computed: 1,
                normalize_hits: 2,
                deps_computed: 1,
                deps_hits: 1,
            },
            total_nanos: 5000,
        };
        let text = trace.to_json_string();
        assert_eq!(PipelineTrace::from_json_string(&text).unwrap(), trace);
    }

    #[test]
    fn report_mentions_every_pass() {
        let trace = PipelineTrace {
            events: vec![TraceEvent {
                nest: Some(0),
                pass: "coalesce".into(),
                outcome: TraceOutcome::Applied { rewrites: 2 },
                nanos: 10,
            }],
            cache: CacheStats::default(),
            total_nanos: 10,
        };
        let report = trace.report();
        assert!(report.contains("coalesce"));
        assert!(report.contains("2 rewrites"));
        assert!(report.contains("analysis cache"));
    }
}
