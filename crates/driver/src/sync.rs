//! Poison-recovering lock helpers, shared by the driver's batch
//! compiler and the serving layer.
//!
//! `Mutex::lock().unwrap()` turns one panicked thread into a cascade:
//! the mutex is poisoned, every later `lock()` returns `Err`, and the
//! `unwrap` re-panics — so a single panicking compile worker would wedge
//! the shared state and turn every subsequent request into a failure.
//! None of the critical sections guarded here leave their data in a
//! broken state on panic (batch slots hold a plain `Option`; the
//! service's counters are atomics and its cache map and queue are
//! structurally consistent between statements), so the right policy is
//! to *recover*: take the value out of the [`std::sync::PoisonError`]
//! and keep going. The fuzzer's service mode leans on this — a
//! malformed request must never take the server down with it.
//!
//! These helpers started life in `lc-service`; they moved here (the
//! lowest crate with a worker pool) so [`crate::batch`] can use them
//! too, and the service re-exports them unchanged.

use std::sync::{Condvar, Mutex, MutexGuard};

/// Lock `m`, recovering the guard if a previous holder panicked.
pub fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Wait on `cv`, recovering the guard if the mutex was poisoned while
/// waiting.
pub fn wait_recovering<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(|e| e.into_inner())
}

/// Consume `m`, recovering the inner value if a holder panicked. The
/// owned counterpart of [`lock_recovering`] for tearing down per-slot
/// mutexes after the workers have finished.
pub fn into_inner_recovering<T>(m: Mutex<T>) -> T {
    m.into_inner().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    fn poisoned(v: u32) -> Arc<Mutex<u32>> {
        let m = Arc::new(Mutex::new(v));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        m
    }

    #[test]
    fn recovers_a_poisoned_mutex() {
        let m = poisoned(7);
        // A plain `.lock().unwrap()` would panic here; recovery hands
        // back the guard with the data intact.
        assert_eq!(*lock_recovering(&m), 7);
        *lock_recovering(&m) = 8;
        assert_eq!(*lock_recovering(&m), 8);
    }

    #[test]
    fn into_inner_recovers_a_poisoned_mutex() {
        let m = poisoned(42);
        let m = Arc::try_unwrap(m).expect("sole owner");
        assert_eq!(into_inner_recovering(m), 42);
    }
}
