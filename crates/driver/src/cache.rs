//! Per-nest analysis memoization.
//!
//! Several passes need the same facts about a nest — its extracted
//! [`Nest`] form, its normalized form, and its dependence analysis. The
//! seed pipeline recomputed these inside every transformation entry
//! point; the driver computes each **once per nest** and hands the cached
//! result to the analysis-injected `lc-xform` entry point
//! ([`lc_xform::coalesce::coalesce_band`]).
//!
//! Every accessor counts a *computed* or a *hit* in [`CacheStats`], so
//! tests (and the trace report) can assert that dependence analysis ran
//! at most once per nest per compilation.

use lc_ir::analysis::depend::{analyze_nest, NestDeps};
use lc_ir::analysis::nest::{extract_nest, Nest};
use lc_ir::stmt::Loop;
use lc_ir::{Error, Result};

/// Hit/miss counters for the per-nest analysis cache. Aggregated across
/// nests into [`crate::trace::PipelineTrace::cache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Times a nest was extracted from its loop.
    pub nest_computed: u64,
    /// Times an already-extracted nest was reused.
    pub nest_hits: u64,
    /// Times a nest was normalized.
    pub normalize_computed: u64,
    /// Times a memoized normalization was reused.
    pub normalize_hits: u64,
    /// Times dependence analysis ran.
    pub deps_computed: u64,
    /// Times a memoized dependence analysis was reused.
    pub deps_hits: u64,
}

impl CacheStats {
    /// Fold another nest's counters into this one.
    pub fn absorb(&mut self, other: &CacheStats) {
        self.nest_computed += other.nest_computed;
        self.nest_hits += other.nest_hits;
        self.normalize_computed += other.normalize_computed;
        self.normalize_hits += other.normalize_hits;
        self.deps_computed += other.deps_computed;
        self.deps_hits += other.deps_hits;
    }

    /// Total memoized reuses.
    pub fn hits(&self) -> u64 {
        self.nest_hits + self.normalize_hits + self.deps_hits
    }

    /// Total fresh computations.
    pub fn computed(&self) -> u64 {
        self.nest_computed + self.normalize_computed + self.deps_computed
    }
}

/// Memoized analyses for one top-level loop nest.
///
/// Holds the *current* form of the loop (structural passes like
/// perfection or interchange replace it via [`NestAnalyses::rewrite`],
/// which drops the memos — analyses describe one specific loop). Failed
/// analyses are memoized too: a nest with symbolic bounds reports the
/// same normalization error on every request without re-running it.
#[derive(Debug)]
pub struct NestAnalyses {
    current: Loop,
    nest: Option<Nest>,
    normalized: Option<Result<Nest>>,
    /// Dependence analysis of the **normalized** nest (the form every
    /// legality check in the pipeline consumes).
    deps: Option<Result<NestDeps>>,
    /// Counters, preserved across [`NestAnalyses::rewrite`].
    pub stats: CacheStats,
}

impl NestAnalyses {
    /// Start tracking `l`.
    pub fn new(l: &Loop) -> Self {
        NestAnalyses {
            current: l.clone(),
            nest: None,
            normalized: None,
            deps: None,
            stats: CacheStats::default(),
        }
    }

    /// The loop in its current (possibly pass-rewritten) form.
    pub fn current(&self) -> &Loop {
        &self.current
    }

    /// Replace the loop after a structural rewrite, invalidating every
    /// memoized analysis (the counters survive).
    pub fn rewrite(&mut self, l: Loop) {
        self.current = l;
        self.nest = None;
        self.normalized = None;
        self.deps = None;
    }

    /// The extracted perfect-nest view of the current loop.
    pub fn nest(&mut self) -> &Nest {
        if self.nest.is_none() {
            self.stats.nest_computed += 1;
            self.nest = Some(extract_nest(&self.current));
        } else {
            self.stats.nest_hits += 1;
        }
        self.nest.as_ref().unwrap()
    }

    /// The normalized nest (`1..=N step 1` headers), or the
    /// normalization error (memoized either way).
    pub fn normalized(&mut self) -> Result<&Nest> {
        if self.normalized.is_none() {
            let raw = self.nest().clone();
            self.stats.normalize_computed += 1;
            self.normalized = Some(lc_xform::normalize::normalize_nest(&raw));
        } else {
            self.stats.normalize_hits += 1;
        }
        self.normalized
            .as_ref()
            .unwrap()
            .as_ref()
            .map_err(Error::clone)
    }

    /// Dependence analysis of the normalized nest (memoized, including
    /// failures). Requesting deps when normalization failed reports the
    /// normalization error.
    pub fn deps(&mut self) -> Result<&NestDeps> {
        if self.deps.is_none() {
            let res = match self.normalized() {
                Ok(n) => analyze_nest(n),
                Err(e) => Err(e),
            };
            self.stats.deps_computed += 1;
            self.deps = Some(res);
        } else {
            self.stats.deps_hits += 1;
        }
        self.deps.as_ref().unwrap().as_ref().map_err(Error::clone)
    }

    /// Borrow the already-computed nest without touching the counters.
    /// Panics if [`NestAnalyses::nest`] has not run.
    pub fn nest_ref(&self) -> &Nest {
        self.nest.as_ref().expect("nest() not yet computed")
    }

    /// Borrow the already-computed normalized nest without touching the
    /// counters. Panics if never computed or if normalization failed.
    pub fn normalized_ref(&self) -> &Nest {
        self.normalized
            .as_ref()
            .expect("normalized() not yet computed")
            .as_ref()
            .expect("normalization failed")
    }

    /// Borrow the already-computed dependence analysis without touching
    /// the counters. Panics if never computed or if analysis failed.
    pub fn deps_ref(&self) -> &NestDeps {
        self.deps
            .as_ref()
            .expect("deps() not yet computed")
            .as_ref()
            .expect("dependence analysis failed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_ir::parser::parse_program;
    use lc_ir::stmt::Stmt;

    fn sample_loop() -> Loop {
        let p = parse_program(
            "
            array A[4][6];
            doall i = 1..4 {
                doall j = 1..6 {
                    A[i][j] = i + j;
                }
            }
            ",
        )
        .unwrap();
        let Stmt::Loop(l) = &p.body[0] else { panic!() };
        l.clone()
    }

    #[test]
    fn analyses_are_computed_once_and_then_hit() {
        let mut cache = NestAnalyses::new(&sample_loop());
        cache.nest();
        cache.normalized().unwrap();
        cache.deps().unwrap();
        cache.nest();
        cache.normalized().unwrap();
        cache.deps().unwrap();
        assert_eq!(cache.stats.nest_computed, 1);
        assert_eq!(cache.stats.normalize_computed, 1);
        assert_eq!(cache.stats.deps_computed, 1);
        assert!(cache.stats.nest_hits >= 1);
        assert!(cache.stats.normalize_hits >= 1);
        assert_eq!(cache.stats.deps_hits, 1);
    }

    #[test]
    fn rewrite_invalidates_memos_but_keeps_counters() {
        let l = sample_loop();
        let mut cache = NestAnalyses::new(&l);
        cache.deps().unwrap();
        let computed_before = cache.stats.computed();
        cache.rewrite(l);
        cache.deps().unwrap();
        assert!(cache.stats.computed() > computed_before);
        assert_eq!(cache.stats.deps_computed, 2);
    }
}
