//! `lc-driver` — the instrumented pass driver for the loop-coalescing
//! workspace.
//!
//! The seed pipeline (`loop_coalescing::coalesce_source`) wired the
//! transformation entry points together ad hoc: every entry point
//! re-extracted, re-normalized, and re-analyzed its nest, and the only
//! observable output was the final program. This crate replaces that
//! wiring with a proper driver:
//!
//! * [`PassManager`] — runs the standard pipeline (analyze → normalize →
//!   perfection → interchange → advise → coalesce → strength-reduce)
//!   over every top-level nest, then validates the rewrite against the
//!   interpreter. The `analyze` stage runs the `lc-lint` checks and can
//!   veto a nest (`deny` severity → [`SkipReason::LintDenied`]).
//! * [`cache::NestAnalyses`] — memoizes nest extraction, normalization,
//!   and dependence analysis per nest, with hit/miss counters
//!   ([`cache::CacheStats`]); each analysis runs **at most once per
//!   nest** per compilation.
//! * [`trace::PipelineTrace`] — a timed, JSON-serializable record of
//!   every pass invocation (applied / skipped-with-diagnostic /
//!   validated), plus a human-readable [`trace::PipelineTrace::report`].
//! * [`Driver::compile_batch`] — compiles many programs on a
//!   self-scheduled worker pool (one shared atomic counter, in the
//!   spirit of the paper's fetch&add dispatcher) with deterministic,
//!   input-ordered results.
//!
//! # Quick example
//!
//! ```
//! use lc_driver::Driver;
//!
//! let out = Driver::default()
//!     .compile(
//!         "
//!         array A[100][50];
//!         doall i = 1..100 {
//!             doall j = 1..50 {
//!                 A[i][j] = i * j;
//!             }
//!         }
//!         ",
//!     )
//!     .unwrap();
//! assert!(out.transformed_source.contains("doall jc = 1..5000"));
//! assert_eq!(out.trace.cache.deps_computed, 1); // analyzed exactly once
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod cache;
pub mod json;
pub mod pass;
pub mod pipeline;
pub mod sync;
pub mod trace;

use std::fmt;

use lc_ir::parser::parse_program;
use lc_ir::program::Program;
use lc_ir::{Result, SkipReason};
use lc_lint::{Finding, LintSet};
use lc_sched::advise::AdviseParams;
use lc_xform::coalesce::{CoalesceInfo, CoalesceOptions};

pub use batch::BatchItem;
pub use cache::CacheStats;
pub use pass::{Pass, PassOutcome};
pub use pipeline::{pass_by_name, PassManager, DEFAULT_PASS_ORDER};
pub use trace::{PipelineTrace, TraceEvent, TraceOutcome};

/// A nest the pipeline left untouched, with its typed diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Skip {
    /// Index of the nest's statement in the program body.
    pub nest: usize,
    /// Why the constant-path coalescing declined.
    pub reason: SkipReason,
    /// When the symbolic fallback was tried and also declined, its
    /// reason.
    pub fallback: Option<SkipReason>,
}

impl fmt::Display for Skip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.fallback {
            Some(fb) => write!(f, "{}; symbolic fallback: {}", self.reason, fb),
            None => write!(f, "{}", self.reason),
        }
    }
}

impl Skip {
    /// Serialize as a tagged JSON object.
    pub fn to_json(&self) -> json::Json {
        let mut pairs = vec![
            ("nest", json::Json::Int(self.nest as i64)),
            ("reason", trace::skip_reason_to_json(&self.reason)),
        ];
        if let Some(fb) = &self.fallback {
            pairs.push(("fallback", trace::skip_reason_to_json(fb)));
        }
        json::Json::obj(pairs)
    }

    /// Deserialize from [`Skip::to_json`] output.
    pub fn from_json(v: &json::Json) -> std::result::Result<Skip, String> {
        Ok(Skip {
            nest: v.int_field("nest")? as usize,
            reason: trace::skip_reason_from_json(v.field("reason")?)?,
            fallback: match v.get("fallback") {
                Some(fb) => Some(trace::skip_reason_from_json(fb)?),
                None => None,
            },
        })
    }
}

/// Driver configuration: the coalescing options plus which enabling
/// passes run.
#[derive(Debug, Clone)]
pub struct DriverOptions {
    /// Options forwarded to the coalescing transformation (band, scheme,
    /// legality checking, strength reduction, …).
    pub coalesce: CoalesceOptions,
    /// Run the nest-perfection pass (sink imperfect statements under
    /// first/last-iteration guards).
    pub enable_perfection: bool,
    /// Run the interchange pass (move serial outermost levels inward).
    pub enable_interchange: bool,
    /// Validate the transformed program against the interpreter.
    pub validate: bool,
    /// When set, the advise pass picks the best legal collapse band for
    /// these machine parameters, overriding `coalesce.levels` per nest.
    pub advise: Option<AdviseParams>,
    /// Pass names to run, in order, instead of
    /// [`pipeline::DEFAULT_PASS_ORDER`]. Every name must be registered
    /// in [`pipeline::pass_by_name`]; [`Driver::new`] panics otherwise.
    pub pass_order: Option<Vec<String>>,
    /// Interpret-and-compare the program against the original after
    /// every *structural* pass application (perfection, interchange,
    /// coalesce), not just once at the end. Each check is traced as a
    /// `validate:{pass}` event; a divergence aborts the compilation.
    /// Expensive — a debugging aid for pass development, off by default.
    pub validate_each_pass: bool,
    /// Per-lint severities for the `analyze` stage. The default is
    /// every lint at `warn`: findings are collected into
    /// [`DriverOutput::lints`] and traced, but never block the
    /// pipeline. A lint at `deny` turns its first finding on a nest
    /// into a [`SkipReason::LintDenied`] skip — the nest is left
    /// untransformed. [`LintSet::all_allow`] disables the stage.
    pub lints: LintSet,
}

impl Default for DriverOptions {
    fn default() -> Self {
        DriverOptions {
            coalesce: CoalesceOptions::default(),
            enable_perfection: true,
            enable_interchange: true,
            validate: true,
            advise: None,
            pass_order: None,
            validate_each_pass: false,
            lints: LintSet::default(),
        }
    }
}

impl DriverOptions {
    /// A stable fingerprint of every knob that can change a
    /// compilation's output. Two drivers with equal fingerprints produce
    /// byte-identical results for the same source, so the fingerprint
    /// (hashed together with the source) is a sound compile-cache key —
    /// the serving layer builds its content-addressed cache on exactly
    /// this.
    ///
    /// The encoding is the `Debug` rendering of the options: every field
    /// of [`DriverOptions`], [`CoalesceOptions`], and
    /// [`AdviseParams`] derives `Debug` structurally, so any field
    /// change — including future added fields — changes the fingerprint.
    pub fn fingerprint(&self) -> String {
        format!("{self:?}")
    }

    /// The configuration the `loop_coalescing` facade uses to stay
    /// byte-compatible with the seed `coalesce_source` pipeline:
    /// coalesce + validate only, no structural enabling passes.
    pub fn facade_compat(coalesce: CoalesceOptions) -> Self {
        DriverOptions {
            coalesce,
            enable_perfection: false,
            enable_interchange: false,
            validate: true,
            advise: None,
            pass_order: None,
            validate_each_pass: false,
            // The seed pipeline predates the analyzer; keep its
            // behaviour (and pass roster) byte-identical.
            lints: LintSet::all_allow(),
        }
    }
}

/// Everything one compilation produced.
#[derive(Debug, Clone)]
pub struct DriverOutput {
    /// The transformed program.
    pub transformed: Program,
    /// The transformed program pretty-printed as DSL source.
    pub transformed_source: String,
    /// Metadata for every nest that was coalesced, in body order. A nest
    /// coalesced through the *symbolic* fallback reports empty `dims`
    /// and zero `total_iterations`.
    pub coalesced: Vec<CoalesceInfo>,
    /// Nests left untouched, with typed diagnostics.
    pub skipped: Vec<Skip>,
    /// Findings the `analyze` stage reported, in nest order. Empty when
    /// the stage is not in the pipeline or every lint is at `allow`.
    pub lints: Vec<Finding>,
    /// The timed record of every pass invocation plus cache counters.
    pub trace: PipelineTrace,
}

/// The single entry point: a configured pass pipeline ready to compile
/// programs (and batches of programs).
pub struct Driver {
    manager: PassManager,
}

impl Default for Driver {
    fn default() -> Self {
        Driver::new(DriverOptions::default())
    }
}

impl Driver {
    /// Build a driver running the standard pipeline under `options`.
    pub fn new(options: DriverOptions) -> Self {
        Driver {
            manager: PassManager::standard(options),
        }
    }

    /// Fallible constructor: build a driver running exactly the named
    /// passes, in order. Unlike [`Driver::new`], an unknown pass name in
    /// `order` (or in `options.pass_order`, which `order` overrides) is
    /// reported as an error instead of panicking — the entry point for
    /// callers assembling pipelines from untrusted or generated input,
    /// such as the differential fuzzer permuting
    /// [`pipeline::DEFAULT_PASS_ORDER`]. The returned driver is
    /// re-runnable: one handle compiles any number of programs (also
    /// concurrently).
    pub fn with_pipeline(
        options: DriverOptions,
        order: &[&str],
    ) -> std::result::Result<Self, String> {
        Ok(Driver {
            manager: PassManager::with_pipeline(options, order)?,
        })
    }

    /// Fallible counterpart of [`Driver::new`]: build the pipeline from
    /// `options.pass_order` (falling back to
    /// [`pipeline::DEFAULT_PASS_ORDER`]), reporting unknown pass names
    /// instead of panicking.
    pub fn try_new(options: DriverOptions) -> std::result::Result<Self, String> {
        let order: Vec<String> = match &options.pass_order {
            Some(o) => o.clone(),
            None => DEFAULT_PASS_ORDER.iter().map(|s| s.to_string()).collect(),
        };
        let names: Vec<&str> = order.iter().map(String::as_str).collect();
        Driver::with_pipeline(options, &names)
    }

    /// Names of the configured pipeline's passes, in order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.manager.pass_names()
    }

    /// The configured options.
    pub fn options(&self) -> &DriverOptions {
        self.manager.options()
    }

    /// The underlying pass manager.
    pub fn manager(&self) -> &PassManager {
        &self.manager
    }

    /// Parse DSL source and compile it.
    pub fn compile(&self, src: &str) -> Result<DriverOutput> {
        self.manager.compile_program(&parse_program(src)?)
    }

    /// Compile an already-parsed program.
    pub fn compile_program(&self, program: &Program) -> Result<DriverOutput> {
        self.manager.compile_program(program)
    }

    /// Compile every source in parallel on a self-scheduled worker
    /// pool. Results preserve input order and are identical to calling
    /// [`Driver::compile`] sequentially; each [`BatchItem`] additionally
    /// records its own wall time, and a panic while compiling one item
    /// becomes that item's error instead of aborting the batch.
    pub fn compile_batch<S: AsRef<str> + Sync>(&self, sources: &[S]) -> Vec<BatchItem> {
        batch::compile_batch(self, sources)
    }
}

// The serving layer shares one `Driver` across a worker pool; keep the
// whole output type tree thread-mobile too.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Driver>();
    assert_send_sync::<DriverOptions>();
    assert_send_sync::<DriverOutput>();
    assert_send_sync::<BatchItem>();
};
