//! Parallel batch compilation with deterministic output ordering.
//!
//! Fittingly for a reproduction of a self-scheduling paper, the batch
//! compiler *is* a self-scheduled loop: workers grab the next source
//! index from one shared atomic counter (the software analogue of the
//! machine's fetch&add dispatcher) and write their result into that
//! index's dedicated slot. Output order therefore depends only on input
//! order, never on scheduling — `compile_batch` returns exactly what
//! mapping [`crate::Driver::compile`] over the inputs sequentially would.

use std::sync::atomic::{AtomicUsize, Ordering};

use lc_ir::Result;
use parking_lot::Mutex;

use crate::{Driver, DriverOutput};

/// Compile every source, in parallel, preserving input order.
pub fn compile_batch<S: AsRef<str> + Sync>(
    driver: &Driver,
    sources: &[S],
) -> Vec<Result<DriverOutput>> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(sources.len());
    if workers <= 1 {
        return sources.iter().map(|s| driver.compile(s.as_ref())).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<DriverOutput>>>> =
        sources.iter().map(|_| Mutex::new(None)).collect();

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= sources.len() {
                    break;
                }
                *slots[i].lock() = Some(driver.compile(sources[i].as_ref()));
            });
        }
    })
    .expect("batch worker panicked");

    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("self-scheduler filled every slot"))
        .collect()
}
