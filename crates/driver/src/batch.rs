//! Parallel batch compilation with deterministic output ordering.
//!
//! Fittingly for a reproduction of a self-scheduling paper, the batch
//! compiler *is* a self-scheduled loop: workers grab the next source
//! index from one shared atomic counter (the software analogue of the
//! machine's fetch&add dispatcher) and write their result into that
//! index's dedicated slot. Output order therefore depends only on input
//! order, never on scheduling — `compile_batch` returns exactly what
//! mapping [`crate::Driver::compile`] over the inputs sequentially would.
//!
//! Each item records its own wall time ([`BatchItem::nanos`]), and a
//! panic while compiling one source is converted into that item's error
//! instead of tearing down the whole batch: the other slots still get
//! their results.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use lc_ir::{Error, Result};

use crate::sync::{into_inner_recovering, lock_recovering};
use crate::{Driver, DriverOutput};

/// One slot of a batch compilation: the item's outcome plus how long it
/// took on its worker (wall time, nanoseconds, always ≥ 1).
#[derive(Debug)]
pub struct BatchItem {
    /// The compilation outcome. A panic inside the compiler surfaces
    /// here as `Err` (an [`Error::Unsupported`] carrying the panic
    /// message), never as a batch-wide abort.
    pub result: Result<DriverOutput>,
    /// Wall time this item spent compiling, in nanoseconds.
    pub nanos: u64,
}

/// Run `f`, timing it and converting a panic into an `Err` so one bad
/// item can never tear down the batch.
fn guarded<F>(f: F) -> BatchItem
where
    F: FnOnce() -> Result<DriverOutput>,
{
    let start = Instant::now();
    let result = match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "<non-string panic payload>".to_string()
            };
            Err(Error::unsupported(format!(
                "compile worker panicked: {msg}"
            )))
        }
    };
    BatchItem {
        result,
        nanos: start.elapsed().as_nanos().max(1) as u64,
    }
}

/// Run one compilation, timing it and containing panics to the item.
fn compile_one(driver: &Driver, source: &str) -> BatchItem {
    guarded(|| driver.compile(source))
}

/// Compile every source, in parallel, preserving input order.
pub fn compile_batch<S: AsRef<str> + Sync>(driver: &Driver, sources: &[S]) -> Vec<BatchItem> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(sources.len());
    if workers <= 1 {
        return sources
            .iter()
            .map(|s| compile_one(driver, s.as_ref()))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<BatchItem>>> = sources.iter().map(|_| Mutex::new(None)).collect();

    // `compile_one` already converts panics into per-item errors, so a
    // worker can only die between items; tolerate that instead of
    // propagating it — every slot a dead worker never reached is
    // reported below, and the poison-recovering accessors keep the
    // surviving slots readable.
    let _ = crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= sources.len() {
                    break;
                }
                *lock_recovering(&slots[i]) = Some(compile_one(driver, sources[i].as_ref()));
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            into_inner_recovering(slot).unwrap_or_else(|| BatchItem {
                result: Err(Error::unsupported(
                    "batch worker died before compiling this item".to_string(),
                )),
                nanos: 1,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panics_become_per_item_errors() {
        let item = guarded(|| panic!("boom {}", 42));
        let err = item.result.expect_err("panic must surface as Err");
        assert!(
            err.to_string().contains("compile worker panicked: boom 42"),
            "{err}"
        );
        assert!(item.nanos >= 1);

        let item = guarded(|| std::panic::panic_any(3usize));
        let err = item.result.expect_err("panic must surface as Err");
        assert!(err.to_string().contains("<non-string panic payload>"));
    }

    #[test]
    fn successful_items_report_wall_time() {
        let driver = Driver::default();
        let item = compile_one(
            &driver,
            "array A[2][3]; doall i = 1..2 { doall j = 1..3 { A[i][j] = i + j; } }",
        );
        assert!(item.result.is_ok());
        assert!(item.nanos >= 1);
    }
}
