//! The [`PassManager`]: a data-driven pass pipeline over a program,
//! timing every pass invocation into a [`PipelineTrace`].
//!
//! The pipeline is a *list of pass names* resolved through the
//! [`pass_by_name`] registry: [`DEFAULT_PASS_ORDER`] reproduces the
//! paper's presentation, [`DriverOptions::pass_order`] reorders or
//! subsets it, and [`PassManager::with_pipeline`] accepts any explicit
//! order for tests and tooling.

use std::time::Instant;

use lc_ir::printer::print_program;
use lc_ir::program::Program;
use lc_ir::stmt::Stmt;
use lc_ir::Result;
use lc_xform::validate::check_equivalent;

use crate::cache::NestAnalyses;
use crate::pass::{
    AdvisePass, AnalyzePass, CoalescePass, Decision, InterchangePass, NestState, NormalizePass,
    Pass, PassCx, PerfectionPass, StrengthReducePass,
};
use crate::trace::{PipelineTrace, TraceEvent, TraceOutcome};
use crate::{DriverOptions, DriverOutput};

/// Seed for the pipeline's built-in equivalence check — the same value
/// the facade has used since the seed commit, so validation remains
/// deterministic and comparable.
pub const VALIDATE_SEED: u64 = 0xC0A1E5CE;

/// The standard pipeline order: analyze → normalize → perfect →
/// interchange → advise → coalesce → strength-reduce — the static
/// analyzer first (it sees the nest exactly as written), then the
/// paper's presentation. Which passes *act* is governed by
/// [`DriverOptions`]; every pass is still invoked and traced.
pub const DEFAULT_PASS_ORDER: [&str; 7] = [
    "analyze",
    "normalize",
    "perfect",
    "interchange",
    "advise",
    "coalesce",
    "strength-reduce",
];

/// The pass registry: resolve a pipeline name to its pass. Every name in
/// [`DEFAULT_PASS_ORDER`] is registered; `None` means the name is
/// unknown.
pub fn pass_by_name(name: &str) -> Option<Box<dyn Pass>> {
    Some(match name {
        "analyze" => Box::new(AnalyzePass) as Box<dyn Pass>,
        "normalize" => Box::new(NormalizePass),
        "perfect" => Box::new(PerfectionPass),
        "interchange" => Box::new(InterchangePass),
        "advise" => Box::new(AdvisePass),
        "coalesce" => Box::new(CoalescePass),
        "strength-reduce" => Box::new(StrengthReducePass),
        _ => return None,
    })
}

/// Runs the pass pipeline over whole programs.
///
/// The manager is immutable after construction (passes are stateless),
/// so one instance can serve many compilations — including concurrently
/// from [`crate::batch::compile_batch`] workers.
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    options: DriverOptions,
}

impl PassManager {
    /// Build the pipeline from [`DriverOptions::pass_order`] when set,
    /// falling back to [`DEFAULT_PASS_ORDER`].
    ///
    /// # Panics
    ///
    /// Panics when `options.pass_order` names a pass that is not in the
    /// [`pass_by_name`] registry — a configuration bug, not an input
    /// error. Use [`PassManager::with_pipeline`] for a fallible build.
    pub fn standard(options: DriverOptions) -> Self {
        let order: Vec<String> = match &options.pass_order {
            Some(o) => o.clone(),
            None => DEFAULT_PASS_ORDER.iter().map(|s| s.to_string()).collect(),
        };
        let names: Vec<&str> = order.iter().map(String::as_str).collect();
        Self::with_pipeline(options, &names)
            .unwrap_or_else(|e| panic!("invalid DriverOptions::pass_order: {e}"))
    }

    /// Build a pipeline running exactly the named passes, in order.
    /// Names resolve through [`pass_by_name`]; an unknown name is
    /// reported, not panicked.
    pub fn with_pipeline(
        options: DriverOptions,
        order: &[&str],
    ) -> std::result::Result<Self, String> {
        let mut passes = Vec::with_capacity(order.len());
        for name in order {
            passes.push(pass_by_name(name).ok_or_else(|| {
                format!(
                    "unknown pass `{name}` (registered: {})",
                    DEFAULT_PASS_ORDER.join(", ")
                )
            })?);
        }
        Ok(PassManager { passes, options })
    }

    /// The configured options.
    pub fn options(&self) -> &DriverOptions {
        &self.options
    }

    /// Names of the pipeline's passes, in order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Compile one program: run every pass over every top-level loop
    /// nest, validate the rewrite, and return the transformed program
    /// with its diagnostics and trace.
    pub fn compile_program(&self, original: &Program) -> Result<DriverOutput> {
        let t0 = Instant::now();
        let mut transformed = original.clone();
        transformed.body.clear();
        let mut coalesced = Vec::new();
        let mut skipped = Vec::new();
        let mut lints = Vec::new();
        let mut trace = PipelineTrace::default();
        // Constant environment from the straight-line statements seen so
        // far; the analyze stage lints each nest under the constants
        // established *before* it (LC002's bounded-symbolic trips).
        let mut env = lc_lint::ConstEnv::new();

        for (idx, stmt) in original.body.iter().enumerate() {
            let Stmt::Loop(l) = stmt else {
                lc_lint::absorb_stmt(&mut env, stmt);
                transformed.body.push(stmt.clone());
                continue;
            };
            let mut cache = NestAnalyses::new(l);
            let mut state = NestState::with_env(idx, env.clone());
            lc_lint::absorb_stmt(&mut env, stmt);
            for pass in &self.passes {
                let start = Instant::now();
                let outcome = {
                    let mut cx = PassCx {
                        options: &self.options,
                        cache: &mut cache,
                    };
                    pass.run(&mut state, &mut cx)?
                };
                let applied = matches!(outcome, crate::pass::PassOutcome::Applied { .. });
                let mapped = match outcome {
                    crate::pass::PassOutcome::Applied { rewrites } => {
                        TraceOutcome::Applied { rewrites }
                    }
                    crate::pass::PassOutcome::Skipped(reason) => TraceOutcome::Skipped { reason },
                    crate::pass::PassOutcome::Noop => TraceOutcome::Noop,
                    crate::pass::PassOutcome::Analyzed { findings, per_lint } => {
                        // One event per lint that ran, then the stage
                        // summary below.
                        for (code, nanos) in per_lint {
                            let fired = findings.iter().filter(|f| f.code == code).count() as u64;
                            let denied = findings
                                .iter()
                                .filter(|f| f.code == code && f.severity == lc_lint::Severity::Deny)
                                .count() as u64;
                            trace.events.push(TraceEvent {
                                nest: Some(idx),
                                pass: format!("lint:{code}"),
                                outcome: TraceOutcome::Analyzed {
                                    findings: fired,
                                    denied,
                                },
                                nanos,
                            });
                        }
                        let denied = findings
                            .iter()
                            .filter(|f| f.severity == lc_lint::Severity::Deny)
                            .count() as u64;
                        let total = findings.len() as u64;
                        lints.extend(findings);
                        TraceOutcome::Analyzed {
                            findings: total,
                            denied,
                        }
                    }
                };
                trace.events.push(TraceEvent {
                    nest: Some(idx),
                    pass: pass.name().to_string(),
                    outcome: mapped,
                    nanos: start.elapsed().as_nanos().max(1) as u64,
                });
                // Per-pass validation hook: after every structural
                // rewrite, interpret-and-compare the program with this
                // nest in its current (partially transformed) state.
                if self.options.validate_each_pass && applied && pass.structural() {
                    let vstart = Instant::now();
                    let mut candidate = original.clone();
                    candidate.body.remove(idx);
                    let current: Vec<Stmt> = match &state.decision {
                        Some(Decision::Coalesced { stmts, .. }) => stmts.clone(),
                        _ => vec![Stmt::Loop(cache.current().clone())],
                    };
                    for (off, s) in current.into_iter().enumerate() {
                        candidate.body.insert(idx + off, s);
                    }
                    check_equivalent(original, &candidate, VALIDATE_SEED)?;
                    trace.events.push(TraceEvent {
                        nest: Some(idx),
                        pass: format!("validate:{}", pass.name()),
                        outcome: TraceOutcome::Validated,
                        nanos: vstart.elapsed().as_nanos().max(1) as u64,
                    });
                }
            }
            trace.cache.absorb(&cache.stats);
            match state.decision {
                Some(Decision::Coalesced { stmts, info }) => {
                    transformed.body.extend(stmts);
                    coalesced.push(info);
                }
                Some(Decision::Skipped(skip)) => {
                    transformed.body.push(stmt.clone());
                    skipped.push(skip);
                }
                // Defensive: the coalesce pass always decides, but an
                // undecided nest must never be dropped from the output.
                None => transformed.body.push(stmt.clone()),
            }
        }

        // Belt and braces: the rewritten program must agree with the
        // original (same policy and seed as the seed pipeline).
        if self.options.validate && !coalesced.is_empty() {
            let start = Instant::now();
            check_equivalent(original, &transformed, VALIDATE_SEED)?;
            trace.events.push(TraceEvent {
                nest: None,
                pass: "validate".to_string(),
                outcome: TraceOutcome::Validated,
                nanos: start.elapsed().as_nanos().max(1) as u64,
            });
        }

        trace.total_nanos = t0.elapsed().as_nanos().max(1) as u64;
        Ok(DriverOutput {
            transformed_source: print_program(&transformed),
            transformed,
            coalesced,
            skipped,
            lints,
            trace,
        })
    }
}
