//! The [`PassManager`]: runs the standard pass pipeline over a program,
//! timing every pass invocation into a [`PipelineTrace`].

use std::time::Instant;

use lc_ir::printer::print_program;
use lc_ir::program::Program;
use lc_ir::stmt::Stmt;
use lc_ir::Result;
use lc_xform::validate::check_equivalent;

use crate::cache::NestAnalyses;
use crate::pass::{
    AdvisePass, CoalescePass, Decision, InterchangePass, NestState, NormalizePass, Pass, PassCx,
    PerfectionPass, StrengthReducePass,
};
use crate::trace::{PipelineTrace, TraceEvent, TraceOutcome};
use crate::{DriverOptions, DriverOutput};

/// Seed for the pipeline's built-in equivalence check — the same value
/// the facade has used since the seed commit, so validation remains
/// deterministic and comparable.
pub const VALIDATE_SEED: u64 = 0xC0A1E5CE;

/// Runs the pass pipeline over whole programs.
///
/// The manager is immutable after construction (passes are stateless),
/// so one instance can serve many compilations — including concurrently
/// from [`crate::batch::compile_batch`] workers.
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    options: DriverOptions,
}

impl PassManager {
    /// The standard pipeline: normalize → perfect → interchange →
    /// advise → coalesce → strength-reduce. Which passes *act* is
    /// governed by `options`; every pass is still invoked and traced.
    pub fn standard(options: DriverOptions) -> Self {
        PassManager {
            passes: vec![
                Box::new(NormalizePass),
                Box::new(PerfectionPass),
                Box::new(InterchangePass),
                Box::new(AdvisePass),
                Box::new(CoalescePass),
                Box::new(StrengthReducePass),
            ],
            options,
        }
    }

    /// The configured options.
    pub fn options(&self) -> &DriverOptions {
        &self.options
    }

    /// Names of the pipeline's passes, in order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Compile one program: run every pass over every top-level loop
    /// nest, validate the rewrite, and return the transformed program
    /// with its diagnostics and trace.
    pub fn compile_program(&self, original: &Program) -> Result<DriverOutput> {
        let t0 = Instant::now();
        let mut transformed = original.clone();
        transformed.body.clear();
        let mut coalesced = Vec::new();
        let mut skipped = Vec::new();
        let mut trace = PipelineTrace::default();

        for (idx, stmt) in original.body.iter().enumerate() {
            let Stmt::Loop(l) = stmt else {
                transformed.body.push(stmt.clone());
                continue;
            };
            let mut cache = NestAnalyses::new(l);
            let mut state = NestState::new(idx);
            for pass in &self.passes {
                let start = Instant::now();
                let outcome = {
                    let mut cx = PassCx {
                        options: &self.options,
                        cache: &mut cache,
                    };
                    pass.run(&mut state, &mut cx)?
                };
                trace.events.push(TraceEvent {
                    nest: Some(idx),
                    pass: pass.name().to_string(),
                    outcome: match outcome {
                        crate::pass::PassOutcome::Applied { rewrites } => {
                            TraceOutcome::Applied { rewrites }
                        }
                        crate::pass::PassOutcome::Skipped(reason) => {
                            TraceOutcome::Skipped { reason }
                        }
                        crate::pass::PassOutcome::Noop => TraceOutcome::Noop,
                    },
                    nanos: start.elapsed().as_nanos().max(1) as u64,
                });
            }
            trace.cache.absorb(&cache.stats);
            match state.decision {
                Some(Decision::Coalesced { stmts, info }) => {
                    transformed.body.extend(stmts);
                    coalesced.push(info);
                }
                Some(Decision::Skipped(skip)) => {
                    transformed.body.push(stmt.clone());
                    skipped.push(skip);
                }
                // Defensive: the coalesce pass always decides, but an
                // undecided nest must never be dropped from the output.
                None => transformed.body.push(stmt.clone()),
            }
        }

        // Belt and braces: the rewritten program must agree with the
        // original (same policy and seed as the seed pipeline).
        if self.options.validate && !coalesced.is_empty() {
            let start = Instant::now();
            check_equivalent(original, &transformed, VALIDATE_SEED)?;
            trace.events.push(TraceEvent {
                nest: None,
                pass: "validate".to_string(),
                outcome: TraceOutcome::Validated,
                nanos: start.elapsed().as_nanos().max(1) as u64,
            });
        }

        trace.total_nanos = t0.elapsed().as_nanos().max(1) as u64;
        Ok(DriverOutput {
            transformed_source: print_program(&transformed),
            transformed,
            coalesced,
            skipped,
            trace,
        })
    }
}
