//! `lc-lint` — static legality & race analysis over the loop IR.
//!
//! The coalescing transformation (crate `lc-xform`) is only sound when
//! every collapsed level really is DOALL; the paper simply *assumes* the
//! nest is parallel and the pipeline historically trusted the `doall`
//! keyword the same way, checking correctness only dynamically. This
//! crate supplies the missing static layer: a registry of IR-level
//! checks built on the GCD + Banerjee dependence tester
//! ([`lc_ir::analysis::depend`]) that emit typed, machine-readable
//! [`Finding`]s with stable codes, severities, and (when linting source
//! text) line numbers.
//!
//! # Lint codes
//!
//! | Code  | Slug                  | Meaning                                           |
//! |-------|-----------------------|---------------------------------------------------|
//! | LC001 | `doall-race`          | a `doall` level carries a dependence              |
//! | LC002 | `trip-overflow`       | coalesced trip count can exceed `i64::MAX`        |
//! | LC003 | `non-affine-subscript`| subscript analyzed conservatively                 |
//! | LC004 | `dead-induction`      | recovered index never read in the body            |
//! | LC005 | `reduction-in-doall`  | cross-iteration scalar / reduction in a parallel level |
//!
//! # Soundness
//!
//! The lints are *conservative*: on programs whose subscripts are affine
//! they have no false negatives (LC001 reports every dependence the
//! Banerjee/GCD tester cannot disprove; non-affine subscripts are
//! treated as conflicting with everything). They may report findings
//! that cannot occur dynamically — that is the safe direction for a
//! legality analysis. [`certifies_order_independent`] builds on this to
//! give the fuzzer a falsifiable contract: when it returns `true`, the
//! final array store of the program must be identical under every
//! `doall` iteration order.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod render;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use lc_ir::analysis::affine::Affine;
use lc_ir::analysis::depend::{analyze_nest, format_direction, NestDeps};
use lc_ir::analysis::nest::{extract_nest, LoopHeader, Nest};
use lc_ir::printer::print_expr;
use lc_ir::{Cond, Expr, Loop, Program, Stmt, Symbol};

/// Stable identifier of one check in the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// LC001: a level declared `doall` carries a flow/anti/output
    /// dependence.
    DoallRace,
    /// LC002: the product of trip counts can exceed `i64::MAX`, so a
    /// coalesced index would overflow.
    TripOverflow,
    /// LC003: a subscript is not affine and the dependence tester had to
    /// treat it conservatively.
    NonAffineSubscript,
    /// LC004: a loop index is never read in the nest body, so its
    /// recovery code after coalescing is pure overhead.
    DeadInduction,
    /// LC005: a recognizable reduction / cross-iteration scalar inside a
    /// parallel level.
    ReductionInDoall,
}

impl LintCode {
    /// Every lint, in code order. Drives registry iteration.
    pub const ALL: [LintCode; 5] = [
        LintCode::DoallRace,
        LintCode::TripOverflow,
        LintCode::NonAffineSubscript,
        LintCode::DeadInduction,
        LintCode::ReductionInDoall,
    ];

    /// Stable code string, e.g. `"LC001"`.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::DoallRace => "LC001",
            LintCode::TripOverflow => "LC002",
            LintCode::NonAffineSubscript => "LC003",
            LintCode::DeadInduction => "LC004",
            LintCode::ReductionInDoall => "LC005",
        }
    }

    /// Human-oriented kebab-case name, e.g. `"doall-race"`.
    pub fn slug(self) -> &'static str {
        match self {
            LintCode::DoallRace => "doall-race",
            LintCode::TripOverflow => "trip-overflow",
            LintCode::NonAffineSubscript => "non-affine-subscript",
            LintCode::DeadInduction => "dead-induction",
            LintCode::ReductionInDoall => "reduction-in-doall",
        }
    }

    /// Parse either the code (`LC001`) or the slug (`doall-race`).
    pub fn parse(s: &str) -> Option<LintCode> {
        LintCode::ALL
            .into_iter()
            .find(|c| c.code().eq_ignore_ascii_case(s) || c.slug() == s)
    }

    fn index(self) -> usize {
        match self {
            LintCode::DoallRace => 0,
            LintCode::TripOverflow => 1,
            LintCode::NonAffineSubscript => 2,
            LintCode::DeadInduction => 3,
            LintCode::ReductionInDoall => 4,
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// How a lint's findings are treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The lint does not run; no findings are produced.
    Allow,
    /// Findings are reported but do not block anything.
    Warn,
    /// Findings are reported *and* fatal: the driver refuses to
    /// transform the nest (`SkipReason::LintDenied`) and the CLI exits
    /// non-zero.
    Deny,
}

impl Severity {
    /// Lower-case name: `allow`, `warn`, or `deny`.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-lint severity configuration. The default is every lint at
/// [`Severity::Warn`]: findings are reported but nothing is blocked, so
/// enabling the analyzer never changes what a pipeline produces unless
/// the user opts into `deny`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintSet {
    levels: [Severity; 5],
}

impl Default for LintSet {
    fn default() -> Self {
        LintSet {
            levels: [Severity::Warn; 5],
        }
    }
}

impl LintSet {
    /// All lints at `warn` (same as `Default`).
    pub fn new() -> LintSet {
        LintSet::default()
    }

    /// All lints at `allow` — the analyzer is effectively off.
    pub fn all_allow() -> LintSet {
        LintSet {
            levels: [Severity::Allow; 5],
        }
    }

    /// Current severity of a lint.
    pub fn level(&self, code: LintCode) -> Severity {
        self.levels[code.index()]
    }

    /// Set the severity of a lint.
    pub fn set(&mut self, code: LintCode, sev: Severity) {
        self.levels[code.index()] = sev;
    }

    /// Builder-style [`LintSet::set`].
    pub fn with(mut self, code: LintCode, sev: Severity) -> LintSet {
        self.set(code, sev);
        self
    }

    /// Set the severity of the lint named by `spec` (a code like `LC001`,
    /// a slug like `doall-race`, or `all` for every lint). Errors with a
    /// human-readable message on an unknown name.
    pub fn set_by_name(&mut self, spec: &str, sev: Severity) -> Result<(), String> {
        if spec == "all" {
            self.levels = [sev; 5];
            return Ok(());
        }
        match LintCode::parse(spec) {
            Some(c) => {
                self.set(c, sev);
                Ok(())
            }
            None => Err(format!(
                "unknown lint `{spec}` (expected a code like LC001, a slug like doall-race, or `all`)"
            )),
        }
    }

    /// True when every lint is at `allow` — the analyze stage can skip
    /// all work.
    pub fn all_allowed(&self) -> bool {
        self.levels.iter().all(|s| *s == Severity::Allow)
    }

    /// True when at least one lint is at `deny`.
    pub fn any_denied(&self) -> bool {
        self.levels.contains(&Severity::Deny)
    }
}

/// Constant-propagation environment mapping scalars to known values
/// (built from straight-line top-level assignments). LC002 uses it to
/// resolve *bounded-symbolic* trip counts like `n = 4000000000; … 1..n`.
pub type ConstEnv = BTreeMap<Symbol, i64>;

/// One diagnostic produced by a lint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which lint fired.
    pub code: LintCode,
    /// Effective severity it fired at.
    pub severity: Severity,
    /// Index of the top-level statement the nest belongs to.
    pub nest: usize,
    /// 0-based level within the (sub)nest, when the finding points at a
    /// specific loop level.
    pub level: Option<usize>,
    /// 1-based source line of the relevant loop header. Only populated
    /// by [`lint_source`]; IR-level linting has no source positions.
    pub line: Option<usize>,
    /// Human-readable description.
    pub message: String,
    /// Machine-readable key/value details (dependence kind, direction
    /// vector, access sites, suggested band, …).
    pub details: Vec<(String, String)>,
    /// Pre-order index of the relevant loop header among all loop
    /// headers of the program; [`lint_source`] maps it to a line.
    pub(crate) ordinal: Option<usize>,
}

impl Finding {
    /// Look up a detail value by key.
    pub fn detail(&self, key: &str) -> Option<&str> {
        self.details
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn detail(k: &str, v: impl Into<String>) -> (String, String) {
    (k.to_string(), v.into())
}

/// One perfect (sub)nest carved out of a top-level loop statement, with
/// the pre-order ordinal of each level's header.
struct SubNest {
    nest: Nest,
    level_ordinals: Vec<usize>,
}

/// Lints one top-level loop statement (and every nest nested below it).
///
/// The driver's `analyze` stage runs each lint individually so it can
/// report per-lint timings; [`lint_program`] runs them all. Dependence
/// analysis is memoized per (sub)nest across lints.
pub struct NestLinter<'a> {
    nest_index: usize,
    env: &'a ConstEnv,
    root: Loop,
    root_ordinal: usize,
    subnests: Vec<SubNest>,
    /// Memo: `None` = not yet computed; `Some(None)` = analysis failed.
    deps: Vec<Option<Option<NestDeps>>>,
}

impl<'a> NestLinter<'a> {
    /// Prepare to lint `l`, the loop at top-level statement `nest_index`.
    pub fn new(l: &Loop, nest_index: usize, env: &'a ConstEnv) -> NestLinter<'a> {
        let mut counter = 0usize;
        NestLinter::with_ordinals(l, nest_index, env, &mut counter)
    }

    /// As [`NestLinter::new`], threading a global pre-order loop-header
    /// counter so [`lint_source`] can attach line numbers.
    pub fn with_ordinals(
        l: &Loop,
        nest_index: usize,
        env: &'a ConstEnv,
        counter: &mut usize,
    ) -> NestLinter<'a> {
        let root_ordinal = *counter;
        let mut subnests = Vec::new();
        collect_subnests(l, counter, &mut subnests);
        let n = subnests.len();
        NestLinter {
            nest_index,
            env,
            root: l.clone(),
            root_ordinal,
            subnests,
            deps: vec![None; n],
        }
    }

    /// Run a single lint at the given severity.
    pub fn run(&mut self, code: LintCode, severity: Severity) -> Vec<Finding> {
        match code {
            LintCode::DoallRace => self.lc001(severity),
            LintCode::TripOverflow => self.lc002(severity),
            LintCode::NonAffineSubscript => self.lc003(severity),
            LintCode::DeadInduction => self.lc004(severity),
            LintCode::ReductionInDoall => self.lc005(severity),
        }
    }

    /// Run every lint enabled in `set` (skipping `allow`), in code order.
    pub fn run_all(&mut self, set: &LintSet) -> Vec<Finding> {
        let mut out = Vec::new();
        for code in LintCode::ALL {
            let sev = set.level(code);
            if sev == Severity::Allow {
                continue;
            }
            out.extend(self.run(code, sev));
        }
        out
    }

    fn ensure_deps(&mut self, si: usize) {
        if self.deps[si].is_none() {
            self.deps[si] = Some(analyze_nest(&self.subnests[si].nest).ok());
        }
    }

    /// LC001: every `doall` level must be dependence-free.
    fn lc001(&mut self, severity: Severity) -> Vec<Finding> {
        let mut out = Vec::new();
        for si in 0..self.subnests.len() {
            if !self.subnests[si]
                .nest
                .loops
                .iter()
                .any(|h| h.kind.is_doall())
            {
                continue;
            }
            self.ensure_deps(si);
            let sn = &self.subnests[si];
            let deps = self.deps[si].as_ref().and_then(|d| d.as_ref());
            let Some(deps) = deps else {
                // Analysis failure: stay conservative and treat every
                // doall level as potentially racy.
                for (k, h) in sn.nest.loops.iter().enumerate() {
                    if h.kind.is_doall() {
                        out.push(Finding {
                            code: LintCode::DoallRace,
                            severity,
                            nest: self.nest_index,
                            level: Some(k),
                            line: None,
                            message: format!(
                                "`doall {}` (level {k}): dependence analysis failed; \
                                 treating the level as potentially racy",
                                h.var
                            ),
                            details: vec![detail("kind", "unknown")],
                            ordinal: Some(sn.level_ordinals[k]),
                        });
                    }
                }
                continue;
            };
            let band = suggested_band(deps);
            for (k, h) in sn.nest.loops.iter().enumerate() {
                if !h.kind.is_doall() {
                    continue;
                }
                let Some(b) = deps.explain(k) else { continue };
                let direction = format_direction(b.direction);
                let kind = b.dep.kind.name();
                out.push(Finding {
                    code: LintCode::DoallRace,
                    severity,
                    nest: self.nest_index,
                    level: Some(k),
                    line: None,
                    message: format!(
                        "`doall {}` (level {k}) carries a {kind} dependence on `{}` \
                         with direction {direction} between statements {} and {}; \
                         iterations are not independent",
                        h.var, b.dep.array, b.dep.src_stmt, b.dep.dst_stmt
                    ),
                    details: vec![
                        detail("kind", kind),
                        detail("array", b.dep.array.to_string()),
                        detail("direction", direction.clone()),
                        detail("src_stmt", b.dep.src_stmt.to_string()),
                        detail("dst_stmt", b.dep.dst_stmt.to_string()),
                        detail("suggested_band", band.clone()),
                    ],
                    ordinal: Some(sn.level_ordinals[k]),
                });
            }
        }
        out
    }

    /// LC002: the coalesced trip count `N1·…·Nm` must fit in `i64`.
    fn lc002(&mut self, severity: Severity) -> Vec<Finding> {
        let mut out = Vec::new();
        for sn in &self.subnests {
            if sn.nest.depth() < 2 {
                continue; // a single level cannot overflow by coalescing
            }
            let mut product: u128 = 1;
            let mut trips = Vec::new();
            for h in &sn.nest.loops {
                match trip_count(h, self.env) {
                    Some(t) => {
                        product = product.saturating_mul(t as u128);
                        trips.push(t.to_string());
                    }
                    // Unknown trips count as 1 so only *provable*
                    // overflows fire.
                    None => trips.push("?".to_string()),
                }
            }
            if product > i64::MAX as u128 {
                out.push(Finding {
                    code: LintCode::TripOverflow,
                    severity,
                    nest: self.nest_index,
                    level: None,
                    line: None,
                    message: format!(
                        "coalescing this depth-{} nest multiplies trip counts [{}] to \
                         {product}, which exceeds i64::MAX ({}); the coalesced index \
                         would overflow",
                        sn.nest.depth(),
                        trips.join(", "),
                        i64::MAX
                    ),
                    details: vec![
                        detail("trips", trips.join(",")),
                        detail("product", product.to_string()),
                    ],
                    ordinal: Some(sn.level_ordinals[0]),
                });
            }
        }
        out
    }

    /// LC003: explain subscripts the dependence tester treats
    /// conservatively.
    fn lc003(&mut self, severity: Severity) -> Vec<Finding> {
        let mut out = Vec::new();
        let nest_index = self.nest_index;
        let mut counter = self.root_ordinal;
        walk_refs(&self.root, &mut counter, &mut |ordinal, array, dim, ix| {
            if Affine::from_expr(ix).is_none() {
                out.push(Finding {
                    code: LintCode::NonAffineSubscript,
                    severity,
                    nest: nest_index,
                    level: None,
                    line: None,
                    message: format!(
                        "subscript `{}` (dimension {dim} of `{array}`) is not affine; \
                         the dependence tester treats it as conflicting with every \
                         reference to `{array}`, so the nest is analyzed conservatively",
                        print_expr(ix)
                    ),
                    details: vec![
                        detail("array", array.to_string()),
                        detail("dim", dim.to_string()),
                        detail("subscript", print_expr(ix)),
                    ],
                    ordinal: Some(ordinal),
                });
            }
        });
        out
    }

    /// LC004: a level whose index is never read makes recovery code pure
    /// overhead.
    fn lc004(&mut self, severity: Severity) -> Vec<Finding> {
        let mut out = Vec::new();
        for sn in &self.subnests {
            let mut used = Vec::new();
            for h in &sn.nest.loops {
                h.lower.variables(&mut used);
                h.upper.variables(&mut used);
                h.step.variables(&mut used);
            }
            stmt_variables(&sn.nest.body, &mut used);
            let used: BTreeSet<Symbol> = used.into_iter().collect();
            for (k, h) in sn.nest.loops.iter().enumerate() {
                if used.contains(&h.var) {
                    continue;
                }
                out.push(Finding {
                    code: LintCode::DeadInduction,
                    severity,
                    nest: self.nest_index,
                    level: Some(k),
                    line: None,
                    message: format!(
                        "index `{}` of level {k} is never read in the nest body; after \
                         coalescing, recovering it is pure overhead — consider \
                         collapsing only the band of live levels (partial collapse)",
                        h.var
                    ),
                    details: vec![detail("var", h.var.to_string())],
                    ordinal: Some(sn.level_ordinals[k]),
                });
            }
        }
        out
    }

    /// LC005: cross-iteration scalar (reduction idiom) inside a nest
    /// with a parallel level.
    fn lc005(&mut self, severity: Severity) -> Vec<Finding> {
        let mut out = Vec::new();
        let mut seen: BTreeSet<Symbol> = BTreeSet::new();
        for sn in &self.subnests {
            if !sn.nest.loops.iter().any(|h| h.kind.is_doall()) {
                continue;
            }
            let loop_vars: BTreeSet<Symbol> = sn.nest.loops.iter().map(|h| h.var.clone()).collect();
            // A scalar never written inside the nest is loop-invariant:
            // reading it is harmless. Only scalars the body also assigns
            // can carry a value across iterations.
            let mut written = BTreeSet::new();
            scalars_assigned(&sn.nest.body, &mut written);
            let mut assigned = BTreeSet::new();
            let mut hits = Vec::new();
            scan_scalars(&sn.nest.body, &mut assigned, &loop_vars, &mut hits);
            hits.retain(|(v, _)| written.contains(v));
            for (var, is_reduction) in hits {
                if !seen.insert(var.clone()) {
                    continue; // already reported at an outer (sub)nest
                }
                let message = if is_reduction {
                    format!(
                        "scalar `{var}` forms a reduction (`{var} = {var} ⊕ …`) inside \
                         a parallel level; iterations are not independent — apply a \
                         reduction strategy or privatize the accumulator"
                    )
                } else {
                    format!(
                        "scalar `{var}` may be read before it is assigned within one \
                         iteration of a parallel level (cross-iteration scalar \
                         dependence); iterations are not independent"
                    )
                };
                out.push(Finding {
                    code: LintCode::ReductionInDoall,
                    severity,
                    nest: self.nest_index,
                    level: None,
                    line: None,
                    message,
                    details: vec![
                        detail("var", var.to_string()),
                        detail(
                            "idiom",
                            if is_reduction {
                                "reduction"
                            } else {
                                "cross-iteration"
                            },
                        ),
                    ],
                    ordinal: Some(sn.level_ordinals[0]),
                });
            }
        }
        out
    }
}

/// Outermost contiguous run of dependence-free levels, rendered as
/// `levels [s, e)` (or `none` when every level is carried).
fn suggested_band(deps: &NestDeps) -> String {
    let par = deps.parallelizable_levels();
    let start = match par.iter().position(|p| *p) {
        Some(s) => s,
        None => return "none".to_string(),
    };
    let end = par[start..]
        .iter()
        .position(|p| !*p)
        .map(|off| start + off)
        .unwrap_or(par.len());
    format!("levels [{start}, {end})")
}

fn collect_subnests(l: &Loop, counter: &mut usize, out: &mut Vec<SubNest>) {
    let nest = extract_nest(l);
    let level_ordinals: Vec<usize> = (0..nest.depth())
        .map(|_| {
            let o = *counter;
            *counter += 1;
            o
        })
        .collect();
    let body = nest.body.clone();
    out.push(SubNest {
        nest,
        level_ordinals,
    });
    subnests_in_stmts(&body, counter, out);
}

fn subnests_in_stmts(stmts: &[Stmt], counter: &mut usize, out: &mut Vec<SubNest>) {
    for s in stmts {
        match s {
            Stmt::Loop(l) => collect_subnests(l, counter, out),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                subnests_in_stmts(then_body, counter, out);
                subnests_in_stmts(else_body, counter, out);
            }
            _ => {}
        }
    }
}

/// Walk every array reference (reads and the write target) under `l` in
/// pre-order, reporting `(innermost loop ordinal, array, dim, subscript)`
/// per subscript expression. The ordinal numbering matches
/// [`collect_subnests`], so findings point at the right header.
fn walk_refs(l: &Loop, counter: &mut usize, f: &mut impl FnMut(usize, &Symbol, usize, &Expr)) {
    let ordinal = *counter;
    *counter += 1;
    expr_refs(&l.lower, ordinal, f);
    expr_refs(&l.upper, ordinal, f);
    expr_refs(&l.step, ordinal, f);
    stmt_refs(&l.body, ordinal, counter, f);
}

fn stmt_refs(
    stmts: &[Stmt],
    ordinal: usize,
    counter: &mut usize,
    f: &mut impl FnMut(usize, &Symbol, usize, &Expr),
) {
    for s in stmts {
        match s {
            Stmt::AssignScalar { value, .. } => expr_refs(value, ordinal, f),
            Stmt::AssignArray { target, value } => {
                for (dim, ix) in target.indices.iter().enumerate() {
                    f(ordinal, &target.array, dim, ix);
                    expr_refs(ix, ordinal, f);
                }
                expr_refs(value, ordinal, f);
            }
            Stmt::Loop(l) => walk_refs(l, counter, f),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                cond_refs(cond, ordinal, f);
                stmt_refs(then_body, ordinal, counter, f);
                stmt_refs(else_body, ordinal, counter, f);
            }
        }
    }
}

fn expr_refs(e: &Expr, ordinal: usize, f: &mut impl FnMut(usize, &Symbol, usize, &Expr)) {
    match e {
        Expr::Const(_) | Expr::Var(_) => {}
        Expr::Read(r) => {
            for (dim, ix) in r.indices.iter().enumerate() {
                f(ordinal, &r.array, dim, ix);
                expr_refs(ix, ordinal, f);
            }
        }
        Expr::Unary(_, a) => expr_refs(a, ordinal, f),
        Expr::Binary(_, a, b) => {
            expr_refs(a, ordinal, f);
            expr_refs(b, ordinal, f);
        }
    }
}

fn cond_refs(c: &Cond, ordinal: usize, f: &mut impl FnMut(usize, &Symbol, usize, &Expr)) {
    match c {
        Cond::Cmp(_, a, b) => {
            expr_refs(a, ordinal, f);
            expr_refs(b, ordinal, f);
        }
        Cond::Not(x) => cond_refs(x, ordinal, f),
        Cond::And(a, b) | Cond::Or(a, b) => {
            cond_refs(a, ordinal, f);
            cond_refs(b, ordinal, f);
        }
    }
}

/// Collect every variable mentioned anywhere in `stmts` (bounds, bodies,
/// conditions, subscripts).
fn stmt_variables(stmts: &[Stmt], out: &mut Vec<Symbol>) {
    for s in stmts {
        match s {
            Stmt::AssignScalar { value, .. } => value.variables(out),
            Stmt::AssignArray { target, value } => {
                for ix in &target.indices {
                    ix.variables(out);
                }
                value.variables(out);
            }
            Stmt::Loop(l) => {
                l.lower.variables(out);
                l.upper.variables(out);
                l.step.variables(out);
                stmt_variables(&l.body, out);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                cond.variables(out);
                stmt_variables(then_body, out);
                stmt_variables(else_body, out);
            }
        }
    }
}

/// Every scalar assigned anywhere in `stmts` (any branch, any depth).
fn scalars_assigned(stmts: &[Stmt], out: &mut BTreeSet<Symbol>) {
    for s in stmts {
        match s {
            Stmt::AssignScalar { var, .. } => {
                out.insert(var.clone());
            }
            Stmt::AssignArray { .. } => {}
            Stmt::Loop(l) => scalars_assigned(&l.body, out),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                scalars_assigned(then_body, out);
                scalars_assigned(else_body, out);
            }
        }
    }
}

/// In-execution-order read-before-definite-assignment scan for scalars.
/// `hits` receives `(var, is_reduction_idiom)` per offending read.
fn scan_scalars(
    stmts: &[Stmt],
    assigned: &mut BTreeSet<Symbol>,
    loop_vars: &BTreeSet<Symbol>,
    hits: &mut Vec<(Symbol, bool)>,
) {
    for s in stmts {
        match s {
            Stmt::AssignScalar { var, value } => {
                let mut reads = Vec::new();
                value.variables(&mut reads);
                for v in reads {
                    if !assigned.contains(&v) && !loop_vars.contains(&v) {
                        hits.push((v.clone(), v == *var));
                    }
                }
                assigned.insert(var.clone());
            }
            Stmt::AssignArray { target, value } => {
                let mut reads = Vec::new();
                for ix in &target.indices {
                    ix.variables(&mut reads);
                }
                value.variables(&mut reads);
                for v in reads {
                    if !assigned.contains(&v) && !loop_vars.contains(&v) {
                        hits.push((v, false));
                    }
                }
            }
            Stmt::Loop(l) => {
                let mut reads = Vec::new();
                l.lower.variables(&mut reads);
                l.upper.variables(&mut reads);
                l.step.variables(&mut reads);
                for v in reads {
                    if !assigned.contains(&v) && !loop_vars.contains(&v) {
                        hits.push((v, false));
                    }
                }
                let mut inner_vars = loop_vars.clone();
                inner_vars.insert(l.var.clone());
                // The body may run zero times: its assignments are not
                // definite afterwards, so scan with a throwaway set.
                let mut inner_assigned = assigned.clone();
                scan_scalars(&l.body, &mut inner_assigned, &inner_vars, hits);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let mut reads = Vec::new();
                cond.variables(&mut reads);
                for v in reads {
                    if !assigned.contains(&v) && !loop_vars.contains(&v) {
                        hits.push((v, false));
                    }
                }
                let mut t = assigned.clone();
                scan_scalars(then_body, &mut t, loop_vars, hits);
                let mut e = assigned.clone();
                scan_scalars(else_body, &mut e, loop_vars, hits);
                // Definite only on both paths.
                *assigned = t.intersection(&e).cloned().collect();
            }
        }
    }
}

/// Fold an expression to a constant under `env`. Division and modulus
/// are deliberately not folded (their rounding conventions belong to the
/// interpreter); `None` means "unknown", which LC002 treats as 1 so only
/// provable overflows fire.
fn eval_const(e: &Expr, env: &ConstEnv) -> Option<i64> {
    use lc_ir::{BinOp, UnOp};
    match e {
        Expr::Const(v) => Some(*v),
        Expr::Var(s) => env.get(s).copied(),
        Expr::Read(_) => None,
        Expr::Unary(UnOp::Neg, a) => eval_const(a, env)?.checked_neg(),
        Expr::Binary(op, a, b) => {
            let (a, b) = (eval_const(a, env)?, eval_const(b, env)?);
            match op {
                BinOp::Add => a.checked_add(b),
                BinOp::Sub => a.checked_sub(b),
                BinOp::Mul => a.checked_mul(b),
                BinOp::Min => Some(a.min(b)),
                BinOp::Max => Some(a.max(b)),
                BinOp::Div | BinOp::Mod | BinOp::CeilDiv => None,
            }
        }
    }
}

/// Trip count of a header whose bounds fold to constants under `env`.
fn trip_count(h: &LoopHeader, env: &ConstEnv) -> Option<u64> {
    let lo = eval_const(&h.lower, env)? as i128;
    let hi = eval_const(&h.upper, env)? as i128;
    let st = eval_const(&h.step, env)? as i128;
    if st == 0 {
        return None;
    }
    let trips = if st > 0 {
        if hi < lo {
            0
        } else {
            (hi - lo) / st + 1
        }
    } else if lo < hi {
        0
    } else {
        (lo - hi) / (-st) + 1
    };
    u64::try_from(trips).ok()
}

/// Lint a whole program: walk top-level statements in order, building
/// the constant-propagation environment from straight-line scalar
/// assignments, and run every enabled lint on each loop statement
/// (including nests nested below imperfect levels and inside `if`
/// bodies).
pub fn lint_program(prog: &Program, set: &LintSet) -> Vec<Finding> {
    let mut out = Vec::new();
    if set.all_allowed() {
        return out;
    }
    let mut env = ConstEnv::new();
    let mut counter = 0usize;
    lint_stmt_list(&prog.body, set, &mut env, &mut counter, None, &mut out);
    out
}

/// Fold one statement into a running constant environment: a
/// straight-line scalar assignment updates (or invalidates) its
/// variable; compound statements (loops, `if`s) invalidate every scalar
/// they *might* assign, since those assignments are not definite
/// straight-line facts. The driver's `analyze` stage uses this to build
/// the [`ConstEnv`] a nest is linted under from the statements that
/// precede it.
pub fn absorb_stmt(env: &mut ConstEnv, s: &Stmt) {
    match s {
        Stmt::AssignScalar { var, value } => match eval_const(value, env) {
            Some(v) => {
                env.insert(var.clone(), v);
            }
            None => {
                env.remove(var);
            }
        },
        Stmt::AssignArray { .. } => {}
        Stmt::Loop(_) | Stmt::If { .. } => {
            let mut assigned = BTreeSet::new();
            scalars_assigned(std::slice::from_ref(s), &mut assigned);
            for var in assigned {
                env.remove(&var);
            }
        }
    }
}

fn lint_stmt_list(
    stmts: &[Stmt],
    set: &LintSet,
    env: &mut ConstEnv,
    counter: &mut usize,
    enclosing_nest: Option<usize>,
    out: &mut Vec<Finding>,
) {
    for (i, s) in stmts.iter().enumerate() {
        let nest_index = enclosing_nest.unwrap_or(i);
        match s {
            Stmt::Loop(l) => {
                let mut linter = NestLinter::with_ordinals(l, nest_index, env, counter);
                out.extend(linter.run_all(set));
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                // Branch assignments are not definite: lint each branch
                // under a cloned environment. Ordinal bookkeeping still
                // threads through both branches in textual order.
                let mut t = env.clone();
                lint_stmt_list(then_body, set, &mut t, counter, Some(nest_index), out);
                let mut e = env.clone();
                lint_stmt_list(else_body, set, &mut e, counter, Some(nest_index), out);
            }
            Stmt::AssignScalar { .. } | Stmt::AssignArray { .. } => {}
        }
        // Afterwards the statement's effect (including invalidation of
        // scalars a loop or branch might have reassigned) flows into the
        // environment the *next* statement is linted under.
        absorb_stmt(env, s);
    }
}

/// Parse `src` and lint it, attaching 1-based source lines to findings
/// by matching loop-header keywords in textual (= pre-order) order.
pub fn lint_source(src: &str, set: &LintSet) -> lc_ir::Result<Vec<Finding>> {
    let prog = lc_ir::parser::parse_program(src)?;
    let mut findings = lint_program(&prog, set);
    let lines = loop_header_lines(src);
    for f in &mut findings {
        if let Some(o) = f.ordinal {
            f.line = lines.get(o).copied();
        }
    }
    Ok(findings)
}

/// 1-based line of every loop-header keyword (`for` / `doall` /
/// `doacross`), in textual order. `//` comments are ignored.
fn loop_header_lines(src: &str) -> Vec<usize> {
    let mut out = Vec::new();
    for (ln, raw) in src.lines().enumerate() {
        let line = raw.split("//").next().unwrap_or(raw);
        let mut i = 0;
        while i < line.len() {
            let rest = &line[i..];
            let Some(kw) = ["doacross", "doall", "for"]
                .into_iter()
                .find(|kw| rest.starts_with(kw))
            else {
                i += rest.chars().next().map(char::len_utf8).unwrap_or(1);
                continue;
            };
            let boundary = |c: char| !c.is_alphanumeric() && c != '_';
            let before_ok = line[..i].chars().next_back().map(boundary).unwrap_or(true);
            let after_ok = rest[kw.len()..]
                .chars()
                .next()
                .map(boundary)
                .unwrap_or(true);
            if before_ok && after_ok {
                out.push(ln + 1);
            }
            i += kw.len();
        }
    }
    out
}

/// Fuzzing contract: when this returns `true`, interpreting the program
/// must produce the same final **array store** under every `doall`
/// iteration order (`Forward`, `Reverse`, `Shuffled(_)`). The
/// interpreter reorders only `doall` loops, so the certificate requires:
///
/// 1. no LC001 finding — every `doall` level of every (sub)nest is
///    dependence-free under the conservative tester;
/// 2. no LC005 finding — no cross-iteration scalar inside a nest with a
///    parallel level;
/// 3. no scalar assigned under a `doall` loop is read after that loop
///    completes (a last-writer-wins scalar escaping into later code
///    would leak the iteration order).
///
/// A `false` answer makes no claim either way — it only means the
/// conservative analysis could not prove independence.
pub fn certifies_order_independent(prog: &Program) -> bool {
    let set = LintSet::all_allow()
        .with(LintCode::DoallRace, Severity::Warn)
        .with(LintCode::ReductionInDoall, Severity::Warn);
    if !lint_program(prog, &set).is_empty() {
        return false;
    }
    let mut poisoned = BTreeSet::new();
    scan_escapes(&prog.body, &mut poisoned, true)
}

/// Walk `stmts` keeping the set of scalars whose value is
/// order-dependent (assigned under a completed `doall`); any read of
/// such a scalar fails the certificate. `definite` is true only for
/// statement lists that are guaranteed to execute exactly once, where a
/// reassignment un-poisons a scalar.
fn scan_escapes(stmts: &[Stmt], poisoned: &mut BTreeSet<Symbol>, definite: bool) -> bool {
    for s in stmts {
        if reads_any_of(s, poisoned) {
            return false;
        }
        match s {
            Stmt::AssignScalar { var, .. } => {
                if definite {
                    poisoned.remove(var);
                }
            }
            Stmt::AssignArray { .. } => {}
            Stmt::Loop(l) => {
                let mut inner = poisoned.clone();
                if !scan_escapes(&l.body, &mut inner, false) {
                    return false;
                }
                // After the loop completes, every scalar assigned under a
                // doall within it is order-dependent.
                let mut w = BTreeSet::new();
                doall_assigned_scalars(std::slice::from_ref(s), false, &mut w);
                poisoned.extend(w);
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                let mut t = poisoned.clone();
                if !scan_escapes(then_body, &mut t, false) {
                    return false;
                }
                let mut e = poisoned.clone();
                if !scan_escapes(else_body, &mut e, false) {
                    return false;
                }
                let mut w = BTreeSet::new();
                doall_assigned_scalars(std::slice::from_ref(s), false, &mut w);
                poisoned.extend(w);
            }
        }
    }
    true
}

/// Scalars assigned anywhere in `stmts` with at least one enclosing
/// `doall` loop inside this subtree.
fn doall_assigned_scalars(stmts: &[Stmt], under_doall: bool, out: &mut BTreeSet<Symbol>) {
    for s in stmts {
        match s {
            Stmt::AssignScalar { var, .. } => {
                if under_doall {
                    out.insert(var.clone());
                }
            }
            Stmt::AssignArray { .. } => {}
            Stmt::Loop(l) => doall_assigned_scalars(&l.body, under_doall || l.kind.is_doall(), out),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                doall_assigned_scalars(then_body, under_doall, out);
                doall_assigned_scalars(else_body, under_doall, out);
            }
        }
    }
}

/// True when any variable read anywhere in `s` (bounds, conditions,
/// subscripts, values) is in `set`. Scope-aware: a loop variable
/// shadows an outer scalar of the same name only within that loop's
/// body.
fn reads_any_of(s: &Stmt, set: &BTreeSet<Symbol>) -> bool {
    if set.is_empty() {
        return false;
    }
    let mut bound = BTreeSet::new();
    stmt_reads_of(s, set, &mut bound)
}

fn expr_reads_of(e: &Expr, set: &BTreeSet<Symbol>, bound: &BTreeSet<Symbol>) -> bool {
    let mut vars = Vec::new();
    e.variables(&mut vars);
    vars.iter().any(|v| set.contains(v) && !bound.contains(v))
}

fn cond_reads_of(c: &Cond, set: &BTreeSet<Symbol>, bound: &BTreeSet<Symbol>) -> bool {
    let mut vars = Vec::new();
    c.variables(&mut vars);
    vars.iter().any(|v| set.contains(v) && !bound.contains(v))
}

fn stmt_reads_of(s: &Stmt, set: &BTreeSet<Symbol>, bound: &mut BTreeSet<Symbol>) -> bool {
    match s {
        Stmt::AssignScalar { value, .. } => expr_reads_of(value, set, bound),
        Stmt::AssignArray { target, value } => {
            target
                .indices
                .iter()
                .any(|ix| expr_reads_of(ix, set, bound))
                || expr_reads_of(value, set, bound)
        }
        Stmt::Loop(l) => {
            if expr_reads_of(&l.lower, set, bound)
                || expr_reads_of(&l.upper, set, bound)
                || expr_reads_of(&l.step, set, bound)
            {
                return true;
            }
            let fresh = bound.insert(l.var.clone());
            let hit = l.body.iter().any(|b| stmt_reads_of(b, set, bound));
            if fresh {
                bound.remove(&l.var);
            }
            hit
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            cond_reads_of(cond, set, bound)
                || then_body.iter().any(|b| stmt_reads_of(b, set, bound))
                || else_body.iter().any(|b| stmt_reads_of(b, set, bound))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_ir::parser::parse_program;

    fn lint(src: &str) -> Vec<Finding> {
        lint_program(&parse_program(src).unwrap(), &LintSet::default())
    }

    fn codes(findings: &[Finding]) -> Vec<LintCode> {
        findings.iter().map(|f| f.code).collect()
    }

    #[test]
    fn lc001_positive_racy_doall_reports_direction() {
        let f = lint(
            "
            array A[8];
            doall i = 2..8 {
                A[i] = A[i - 1] + 1;
            }
            ",
        );
        let hit = f
            .iter()
            .find(|x| x.code == LintCode::DoallRace)
            .expect("LC001 must fire on a racy doall");
        assert_eq!(hit.level, Some(0));
        assert_eq!(hit.detail("kind"), Some("flow"));
        assert_eq!(hit.detail("direction"), Some("(<)"));
        assert!(hit.message.contains("(<)"), "{}", hit.message);
        assert_eq!(hit.detail("suggested_band"), Some("none"));
    }

    #[test]
    fn lc001_negative_clean_doall_is_silent() {
        let f = lint(
            "
            array A[8][8];
            doall i = 1..8 {
                doall j = 1..8 {
                    A[i][j] = i + j;
                }
            }
            ",
        );
        assert!(
            !codes(&f).contains(&LintCode::DoallRace),
            "clean nest must not trip LC001: {f:?}"
        );
    }

    #[test]
    fn lc001_suggests_the_outer_legal_band() {
        // Inner level carries a recurrence; outer is clean.
        let f = lint(
            "
            array A[8][8];
            doall i = 1..8 {
                doall j = 2..8 {
                    A[i][j] = A[i][j - 1] + 1;
                }
            }
            ",
        );
        let hit = f
            .iter()
            .find(|x| x.code == LintCode::DoallRace)
            .expect("LC001 on the inner level");
        assert_eq!(hit.level, Some(1));
        assert_eq!(hit.detail("suggested_band"), Some("levels [0, 1)"));
    }

    #[test]
    fn lc001_fires_on_doall_subnest_below_imperfect_code() {
        let f = lint(
            "
            array A[8];
            for t = 1..3 {
                s = t;
                doall i = 2..8 {
                    A[i] = A[i - 1] + s;
                }
            }
            ",
        );
        assert!(
            codes(&f).contains(&LintCode::DoallRace),
            "must recurse into sub-nests: {f:?}"
        );
    }

    #[test]
    fn lc002_positive_constant_trip_overflow() {
        let f = lint(
            "
            array A[4];
            doall i = 1..4000000000 {
                doall j = 1..4000000000 {
                    A[1] = 0;
                }
            }
            ",
        );
        let hit = f
            .iter()
            .find(|x| x.code == LintCode::TripOverflow)
            .expect("16e18 iterations exceed i64::MAX");
        assert_eq!(hit.detail("product"), Some("16000000000000000000"));
    }

    #[test]
    fn lc002_positive_bounded_symbolic_trips() {
        let f = lint(
            "
            array A[4];
            n = 4000000000;
            doall i = 1..n {
                doall j = 1..n {
                    doall k = 1..n {
                        A[1] = 0;
                    }
                }
            }
            ",
        );
        assert!(
            codes(&f).contains(&LintCode::TripOverflow),
            "const-propagated symbolic bounds must be resolved: {f:?}"
        );
    }

    #[test]
    fn lc002_negative_small_and_unknown_trips() {
        let f = lint(
            "
            array A[4][4];
            doall i = 1..4 {
                doall j = 1..m {
                    A[i][1] = i;
                }
            }
            ",
        );
        assert!(
            !codes(&f).contains(&LintCode::TripOverflow),
            "unknown trips count as 1; only provable overflows fire: {f:?}"
        );
    }

    #[test]
    fn lc003_positive_names_the_subscript() {
        let f = lint(
            "
            array A[100];
            doall i = 1..8 {
                A[i * i] = i;
            }
            ",
        );
        let hit = f
            .iter()
            .find(|x| x.code == LintCode::NonAffineSubscript)
            .expect("i * i is not affine");
        assert_eq!(hit.detail("subscript"), Some("i * i"));
        assert_eq!(hit.detail("array"), Some("A"));
    }

    #[test]
    fn lc003_negative_affine_subscripts() {
        let f = lint(
            "
            array A[40];
            doall i = 1..8 {
                A[2 * i + 3] = i;
            }
            ",
        );
        assert!(!codes(&f).contains(&LintCode::NonAffineSubscript), "{f:?}");
    }

    #[test]
    fn lc004_positive_dead_outer_index() {
        let f = lint(
            "
            array A[8];
            doall t = 1..5 {
                doall i = 1..8 {
                    A[i] = i;
                }
            }
            ",
        );
        let hit = f
            .iter()
            .find(|x| x.code == LintCode::DeadInduction)
            .expect("t is never read");
        assert_eq!(hit.detail("var"), Some("t"));
        assert_eq!(hit.level, Some(0));
    }

    #[test]
    fn lc004_negative_index_used_in_inner_bound() {
        // k is only used by the inner loop's bound — still live.
        let f = lint(
            "
            array A[8];
            for k = 1..4 {
                doall i = 1..k {
                    A[i] = i;
                }
            }
            ",
        );
        assert!(!codes(&f).contains(&LintCode::DeadInduction), "{f:?}");
    }

    #[test]
    fn lc005_positive_reduction_idiom() {
        let f = lint(
            "
            array A[8];
            doall i = 1..8 {
                s = s + A[i];
            }
            ",
        );
        let hit = f
            .iter()
            .find(|x| x.code == LintCode::ReductionInDoall)
            .expect("s = s + … is a reduction in a doall");
        assert_eq!(hit.detail("var"), Some("s"));
        assert_eq!(hit.detail("idiom"), Some("reduction"));
    }

    #[test]
    fn lc005_negative_per_iteration_temp() {
        let f = lint(
            "
            array A[8];
            doall i = 1..8 {
                t = i * 2;
                A[i] = t;
            }
            ",
        );
        assert!(!codes(&f).contains(&LintCode::ReductionInDoall), "{f:?}");
    }

    #[test]
    fn lc005_serial_reduction_is_fine() {
        let f = lint(
            "
            array A[8];
            for i = 1..8 {
                s = s + A[i];
            }
            ",
        );
        assert!(!codes(&f).contains(&LintCode::ReductionInDoall), "{f:?}");
    }

    #[test]
    fn severities_and_allow_filtering() {
        let src = "
            array A[8];
            doall i = 2..8 {
                A[i] = A[i - 1] + 1;
            }
        ";
        let prog = parse_program(src).unwrap();
        let denying = LintSet::default().with(LintCode::DoallRace, Severity::Deny);
        let f = lint_program(&prog, &denying);
        assert!(f
            .iter()
            .any(|x| x.code == LintCode::DoallRace && x.severity == Severity::Deny));
        let allowing = LintSet::default().with(LintCode::DoallRace, Severity::Allow);
        let f = lint_program(&prog, &allowing);
        assert!(!codes(&f).contains(&LintCode::DoallRace));
        assert!(lint_program(&prog, &LintSet::all_allow()).is_empty());
    }

    #[test]
    fn lint_set_parses_names() {
        let mut set = LintSet::default();
        set.set_by_name("doall-race", Severity::Deny).unwrap();
        assert_eq!(set.level(LintCode::DoallRace), Severity::Deny);
        set.set_by_name("LC005", Severity::Allow).unwrap();
        assert_eq!(set.level(LintCode::ReductionInDoall), Severity::Allow);
        set.set_by_name("all", Severity::Warn).unwrap();
        assert!(!set.any_denied());
        assert!(set.set_by_name("LC999", Severity::Warn).is_err());
    }

    #[test]
    fn lint_source_attaches_lines() {
        let src = "array A[8];\ndoall i = 2..8 {\n    A[i] = A[i - 1] + 1;\n}\n";
        let f = lint_source(src, &LintSet::default()).unwrap();
        let hit = f.iter().find(|x| x.code == LintCode::DoallRace).unwrap();
        assert_eq!(hit.line, Some(2));
    }

    #[test]
    fn lint_source_lines_inside_nested_loops() {
        let src = "array A[8][8];\nfor t = 1..3 {\n    doall i = 1..8 {\n        doall j = 2..8 {\n            A[i][j] = A[i][j - 1];\n        }\n    }\n}\n";
        let f = lint_source(src, &LintSet::default()).unwrap();
        let hit = f.iter().find(|x| x.code == LintCode::DoallRace).unwrap();
        // The carried level is `j`, declared on line 4.
        assert_eq!(hit.line, Some(4));
    }

    #[test]
    fn certify_accepts_clean_program() {
        let p = parse_program(
            "
            array A[8][8];
            doall i = 1..8 {
                doall j = 1..8 {
                    A[i][j] = i * 10 + j;
                }
            }
            ",
        )
        .unwrap();
        assert!(certifies_order_independent(&p));
    }

    #[test]
    fn certify_rejects_racy_doall() {
        let p = parse_program(
            "
            array A[8];
            doall i = 1..8 {
                A[1] = i;
            }
            ",
        )
        .unwrap();
        assert!(!certifies_order_independent(&p));
    }

    #[test]
    fn certify_rejects_scalar_escaping_a_doall() {
        // s's final value is the last iteration's — order-dependent —
        // and it flows into B. No LC001 (A writes are disjoint), no
        // LC005 (s is written before read within the iteration): only
        // the escape rule catches it.
        let p = parse_program(
            "
            array A[8];
            array B[1];
            doall i = 1..8 {
                s = i;
                A[i] = s;
            }
            B[1] = s;
            ",
        )
        .unwrap();
        assert!(!certifies_order_independent(&p));
    }

    #[test]
    fn certify_rejects_scalar_escaping_within_a_serial_loop() {
        // The doall is nested in a serial loop and the escape happens to
        // a later sibling inside that loop's body.
        let p = parse_program(
            "
            array A[8][8];
            array B[8];
            for t = 1..8 {
                doall i = 1..8 {
                    s = i + t;
                    A[t][i] = s;
                }
                B[t] = s;
            }
            ",
        )
        .unwrap();
        assert!(!certifies_order_independent(&p));
    }

    #[test]
    fn certify_allows_scalar_read_after_serial_reassignment() {
        let p = parse_program(
            "
            array A[8];
            array B[1];
            doall i = 1..8 {
                s = i;
                A[i] = s;
            }
            s = 7;
            B[1] = s;
            ",
        )
        .unwrap();
        assert!(certifies_order_independent(&p));
    }

    #[test]
    fn certify_ignores_serial_and_doacross_loops() {
        // The interpreter never reorders serial or doacross loops, so a
        // carried dependence there does not block the certificate.
        let p = parse_program(
            "
            array A[8];
            for i = 2..8 {
                A[i] = A[i - 1] + 1;
            }
            ",
        )
        .unwrap();
        assert!(certifies_order_independent(&p));
    }
}
