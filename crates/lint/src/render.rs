//! Rendering of [`Finding`]s as human-readable text and as
//! machine-readable JSON.
//!
//! The JSON writer is deliberately tiny and deterministic (fixed key
//! order, one object per finding) so the CLI's `--format json` output
//! can be committed as a golden file and diffed byte-for-byte by CI.

use std::fmt::Write as _;

use crate::{Finding, Severity};

/// Escape a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One finding as a single-line JSON object with a fixed key order.
pub fn finding_to_json(f: &Finding) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"code\":\"{}\",\"slug\":\"{}\",\"severity\":\"{}\",\"nest\":{}",
        f.code.code(),
        f.code.slug(),
        f.severity.name(),
        f.nest
    );
    match f.level {
        Some(l) => {
            let _ = write!(out, ",\"level\":{l}");
        }
        None => out.push_str(",\"level\":null"),
    }
    match f.line {
        Some(l) => {
            let _ = write!(out, ",\"line\":{l}");
        }
        None => out.push_str(",\"line\":null"),
    }
    let _ = write!(out, ",\"message\":\"{}\"", json_escape(&f.message));
    out.push_str(",\"details\":{");
    for (i, (k, v)) in f.details.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
    }
    out.push_str("}}");
    out
}

/// A list of findings as a JSON array (one line).
pub fn findings_to_json(findings: &[Finding]) -> String {
    let items: Vec<String> = findings.iter().map(finding_to_json).collect();
    format!("[{}]", items.join(","))
}

/// The corpus report: one `{"index":…,"findings":[…]}` line per
/// program, wrapped in a JSON array. Committed as
/// `tests/fixtures/corpus_lints.json` and diffed by CI.
pub fn corpus_report_json(per_program: &[(usize, Vec<Finding>)]) -> String {
    let mut out = String::from("[\n");
    for (i, (index, findings)) in per_program.iter().enumerate() {
        let _ = write!(
            out,
            "{{\"index\":{},\"findings\":{}}}",
            index,
            findings_to_json(findings)
        );
        if i + 1 < per_program.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Rustc-flavoured text rendering:
///
/// ```text
/// warning[LC001] doall-race: `doall i` (level 0) carries a flow …
///   --> line 3 (nest 0, level 0)
///   = direction: (<)
/// ```
pub fn finding_to_text(f: &Finding) -> String {
    let head = match f.severity {
        Severity::Deny => "error",
        _ => "warning",
    };
    let mut out = format!(
        "{head}[{}] {}: {}\n",
        f.code.code(),
        f.code.slug(),
        f.message
    );
    let mut loc = Vec::new();
    if let Some(l) = f.line {
        loc.push(format!("line {l}"));
    }
    loc.push(format!("nest {}", f.nest));
    if let Some(l) = f.level {
        loc.push(format!("level {l}"));
    }
    let _ = writeln!(out, "  --> {}", loc.join(", "));
    for (k, v) in &f.details {
        let _ = writeln!(out, "  = {k}: {v}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_source, LintSet};

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn finding_json_is_single_line_and_stable() {
        let src = "array A[8];\ndoall i = 2..8 {\n    A[i] = A[i - 1];\n}\n";
        let f = lint_source(src, &LintSet::default()).unwrap();
        let racy = f
            .iter()
            .find(|x| x.code == crate::LintCode::DoallRace)
            .unwrap();
        let json = finding_to_json(racy);
        assert!(!json.contains('\n'));
        assert!(json.starts_with("{\"code\":\"LC001\",\"slug\":\"doall-race\""));
        assert!(json.contains("\"line\":2"));
        assert!(json.contains("\"direction\":\"(<)\""));
    }

    #[test]
    fn corpus_report_shape() {
        let report = corpus_report_json(&[(0, vec![]), (1, vec![])]);
        assert_eq!(
            report,
            "[\n{\"index\":0,\"findings\":[]},\n{\"index\":1,\"findings\":[]}\n]\n"
        );
    }

    #[test]
    fn text_rendering_mentions_code_and_location() {
        let src = "array A[8];\ndoall i = 2..8 {\n    A[i] = A[i - 1];\n}\n";
        let f = lint_source(src, &LintSet::default()).unwrap();
        let racy = f
            .iter()
            .find(|x| x.code == crate::LintCode::DoallRace)
            .unwrap();
        let text = finding_to_text(racy);
        assert!(text.starts_with("warning[LC001] doall-race:"));
        assert!(text.contains("--> line 2"));
        assert!(text.contains("= direction: (<)"));
    }
}
