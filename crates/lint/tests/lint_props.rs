//! Property-level soundness of the race lint: LC001 is the analyzer's
//! promise that a `doall` nest has no cross-iteration conflict, so any
//! constant-bound nest (rank ≤ 4) the lint passes clean must produce a
//! byte-identical final store whether its `doall` levels iterate
//! forward or reversed. This is the in-tree miniature of the
//! `lint-unsound` oracle `lc-fuzz` runs at scale.

use proptest::prelude::*;

use lc_ir::interp::{DoallOrder, Interp, Store};
use lc_ir::{ArrayRef, Expr, Loop, LoopKind, Program, Stmt, Symbol};
use lc_lint::{lint_program, LintCode, LintSet, Severity};

/// A random rank-1..4 constant `doall` nest writing
/// `A[i_k + w_k] = (A|B)[i_k + r_k] + 1`, with optional transposition of
/// the innermost two read subscripts — the same access shapes the
/// dependence-analyzer soundness suite uses, rich enough to produce
/// both racy and clean nests.
#[derive(Debug, Clone)]
struct Spec {
    dims: Vec<u64>,
    write_off: Vec<i64>,
    read_off: Vec<i64>,
    read_same: bool,
    transpose_read: bool,
}

fn spec() -> impl Strategy<Value = Spec> {
    (1usize..=4)
        .prop_flat_map(|rank| {
            (
                proptest::collection::vec(2u64..=3, rank),
                proptest::collection::vec(-2i64..=2, rank),
                proptest::collection::vec(-2i64..=2, rank),
                proptest::bool::ANY,
                proptest::bool::ANY,
            )
        })
        .prop_map(
            |(dims, write_off, read_off, read_same, transpose_read)| Spec {
                dims,
                write_off,
                read_off,
                read_same,
                transpose_read,
            },
        )
}

/// Build the program; subscripts are shifted by +3 so every offset in
/// -2..=2 stays in bounds for extent `max_dim + 6`.
fn build(s: &Spec) -> Program {
    let rank = s.dims.len();
    let max_dim = *s.dims.iter().max().unwrap() as usize;
    let ext: Vec<usize> = vec![max_dim + 6; rank];
    let vars: Vec<Symbol> = (0..rank).map(|k| Symbol::new(format!("i{k}"))).collect();

    let sub = |offsets: &[i64], transpose: bool| -> Vec<Expr> {
        let mut subs: Vec<Expr> = offsets
            .iter()
            .zip(&vars)
            .map(|(&off, v)| Expr::Var(v.clone()) + Expr::lit(off + 3))
            .collect();
        if transpose && subs.len() >= 2 {
            let last = subs.len() - 1;
            subs.swap(last - 1, last);
        }
        subs
    };

    let read_array = if s.read_same { "A" } else { "B" };
    let mut stmts = vec![Stmt::AssignArray {
        target: ArrayRef::new("A", sub(&s.write_off, false)),
        value: Expr::read(read_array, sub(&s.read_off, s.transpose_read)) + Expr::lit(1),
    }];
    for k in (0..rank).rev() {
        stmts = vec![Stmt::Loop(Loop::new(
            LoopKind::Doall,
            vars[k].clone(),
            1,
            s.dims[k] as i64,
            stmts,
        ))];
    }
    let mut p = Program::new().with_array("A", ext.clone());
    if !s.read_same {
        p = p.with_array("B", ext);
    }
    p.body = stmts;
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn lc001_clean_nests_are_order_independent(s in spec()) {
        let p = build(&s);
        p.check().unwrap();

        let set = LintSet::all_allow().with(LintCode::DoallRace, Severity::Warn);
        if !lint_program(&p, &set).is_empty() {
            // The lint found a race; nothing is promised. (The converse
            // — a racy nest the lint misses — is exactly what the
            // assertion below would catch on a clean verdict.)
            return Ok(());
        }

        let base = Store::for_program(&p);
        let run = |order: DoallOrder| {
            Interp::new()
                .with_order(order)
                .run_on(&p, base.clone())
                .map(|(store, _)| store.digest())
        };
        let forward = run(DoallOrder::Forward).expect("clean nest must execute");
        let reverse = run(DoallOrder::Reverse).expect("clean nest must execute");
        prop_assert_eq!(
            forward, reverse,
            "LC001 passed this nest clean but its result is order-dependent\nspec: {:?}",
            s
        );
    }
}
