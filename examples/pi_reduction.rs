//! Reductions and coalescing: why `s = s + …` is rejected inside a
//! `doall`, and the partial-sum pattern that replaces it — both in the IR
//! (the thesis's `calculate_pi`) and on the real-thread runtime.
//!
//! ```text
//! cargo run --release --example pi_reduction
//! ```

use loop_coalescing::ir::interp::Interp;
use loop_coalescing::ir::parser::parse_program;
use loop_coalescing::ir::Stmt;
use loop_coalescing::runtime::{parallel_sum, RuntimeOptions};
use loop_coalescing::sched::policy::PolicyKind;
use loop_coalescing::workloads::kernels::pi_partial_sums;
use loop_coalescing::xform::coalesce::{coalesce_loop, CoalesceOptions};

fn main() {
    // ── 1. the naive reduction is rejected ───────────────────────────────
    let naive = parse_program(
        "
        array A[1000];
        s = 0;
        doall i = 1..1000 {
            s = s + A[i];
        }
        ",
    )
    .unwrap();
    let Stmt::Loop(l) = &naive.body[1] else {
        panic!()
    };
    let err = coalesce_loop(l, &CoalesceOptions::default()).unwrap_err();
    println!("naive reduction inside a doall is rejected:\n  {err}\n");

    // ── 2. the partial-sum kernel coalesces fine ─────────────────────────
    let kernel = pi_partial_sums(8, 4096);
    let opts = CoalesceOptions::builder().levels_opt(kernel.band).build();
    let result = coalesce_loop(kernel.target_loop(), &opts).unwrap();
    let mut transformed = kernel.program.clone();
    transformed.body[kernel.loop_index] = Stmt::Loop(result.transformed);
    let store = Interp::new().run(&transformed).unwrap();
    let pi_ir = store.get("PI", &[1]).unwrap() as f64 / 1e6;
    println!(
        "IR kernel (8 tasks x 4096 intervals, fixed-point): pi ≈ {pi_ir:.6}  (error {:+.2e})",
        pi_ir - std::f64::consts::PI
    );

    // ── 3. the same pattern on real threads ──────────────────────────────
    let n = 10_000_000u64;
    for policy in [PolicyKind::Chunked(4096), PolicyKind::Guided] {
        let opts = RuntimeOptions { threads: 0, policy };
        let (sum, stats) = parallel_sum(n, &opts, |c| {
            let x = (c as f64 + 0.5) / n as f64;
            (4.0 / (1.0 + x * x) * 1e12 / n as f64) as i64
        });
        let pi = sum as f64 / 1e12;
        println!(
            "runtime {:<9} {} threads, {:>6} chunks: pi ≈ {pi:.9} in {:.1} ms",
            stats.policy,
            stats.threads,
            stats.total_chunks(),
            stats.elapsed.as_secs_f64() * 1e3,
        );
    }
    println!("\n(each worker folds a private partial; the partials are combined after");
    println!(" the join — the dependence-free formulation of the reduction)");
}
