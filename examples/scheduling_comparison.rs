//! Scheduling on the simulated machine: sweep processors and policies on
//! a triangular workload and watch coalescing + dynamic dispatch fix the
//! load imbalance that defeats static outer-loop parallelization.
//!
//! ```text
//! cargo run --release --example scheduling_comparison
//! ```

use loop_coalescing::machine::cost::CostModel;
use loop_coalescing::machine::exec::{simulate_nest, ExecMode};
use loop_coalescing::machine::metrics::Metrics;
use loop_coalescing::machine::sim::LoopSchedule;
use loop_coalescing::sched::policy::{PolicyKind, StaticKind};
use loop_coalescing::workloads::itertime::WorkModel;
use loop_coalescing::xform::recovery::{per_iteration_cost, RecoveryScheme};

fn main() {
    let dims = [64u64, 64];
    let model = WorkModel::TriangularMask {
        heavy: 100,
        light: 1,
    };
    let cost = CostModel::default();
    let rec = per_iteration_cost(RecoveryScheme::Ceiling, &dims).units();
    let body = move |iv: &[i64]| model.cost(iv);

    let seq = simulate_nest(&dims, 1, ExecMode::Sequential, &cost, &body).makespan;
    println!("workload: {:?} nest, body = {}", dims, model.name());
    println!("sequential time: {seq} abstract instructions\n");

    let modes: Vec<(&str, ExecMode)> = vec![
        (
            "outer-parallel, static block",
            ExecMode::OuterParallel {
                schedule: LoopSchedule::Static(StaticKind::Block),
            },
        ),
        (
            "outer-parallel, self-sched",
            ExecMode::OuterParallel {
                schedule: LoopSchedule::Dynamic(PolicyKind::SelfSched),
            },
        ),
        (
            "coalesced, static block",
            ExecMode::Coalesced {
                schedule: LoopSchedule::Static(StaticKind::Block),
                recovery_cost: rec,
            },
        ),
        (
            "coalesced, CSS(32)",
            ExecMode::coalesced(PolicyKind::Chunked(32), rec),
        ),
        (
            "coalesced, GSS",
            ExecMode::coalesced(PolicyKind::Guided, rec),
        ),
        (
            "coalesced, factoring",
            ExecMode::coalesced(PolicyKind::Factoring, rec),
        ),
    ];

    println!(
        "{:<30} {:>6} {:>9} {:>7} {:>10} {:>10}",
        "strategy", "p", "makespan", "speedup", "imbalance", "fetch&adds"
    );
    for p in [4usize, 16, 64] {
        println!("{}", "-".repeat(76));
        for (name, mode) in &modes {
            let r = simulate_nest(&dims, p, *mode, &cost, &body);
            let m = Metrics::compute(seq, &r, p);
            println!(
                "{:<30} {:>6} {:>9} {:>7.2} {:>10.3} {:>10}",
                name, p, r.makespan, m.speedup, m.imbalance, r.fetch_adds
            );
        }
    }

    println!("\nreading guide: static outer-loop scheduling assigns whole rows, so the");
    println!("triangle piles heavy rows onto the last processors (imbalance → 1.0).");
    println!("Coalescing turns the nest into one 4096-iteration pool; GSS/factoring");
    println!("then balance it to within a fraction of a percent.");
}
