//! Matrix multiplication, the paper era's canonical coalescing example:
//! transform the IR kernel, verify it, then run the same shape on real
//! threads and compare dispatch strategies.
//!
//! ```text
//! cargo run --release --example matmul_coalesce
//! ```

use std::time::Duration;

use loop_coalescing::ir::interp::Interp;
use loop_coalescing::ir::printer::print_stmt_str;
use loop_coalescing::ir::Stmt;
use loop_coalescing::runtime::{coalesced_for, inner_sweep_for, outer_for, RuntimeOptions};
use loop_coalescing::sched::policy::PolicyKind;
use loop_coalescing::workloads::kernels::matmul;
use loop_coalescing::workloads::rt::{gen_a, gen_b, matmul_cell, matmul_serial, AtomicMatrix};
use loop_coalescing::xform::coalesce::{coalesce_loop, CoalesceOptions};

fn main() {
    // ── 1. the compiler side: coalesce the (i, j) nest of the IR kernel ──
    let kernel = matmul(8, 6, 5);
    let target = kernel.target_loop().clone();
    println!("── matmul (i, j) nest before ────────────────────────────");
    print!("{}", print_stmt_str(&Stmt::Loop(target.clone())));

    let opts = CoalesceOptions::builder().levels_opt(kernel.band).build();
    let result = coalesce_loop(&target, &opts).expect("matmul nest must coalesce");
    println!("\n── after coalescing (k-reduction stays serial inside) ───");
    print!(
        "{}",
        print_stmt_str(&Stmt::Loop(result.transformed.clone()))
    );

    // Verify by running both programs.
    let mut transformed_prog = kernel.program.clone();
    transformed_prog.body[kernel.loop_index] = Stmt::Loop(result.transformed);
    let a = Interp::new().run(&kernel.program).unwrap();
    let b = Interp::new().run(&transformed_prog).unwrap();
    assert_eq!(a, b);
    println!("\ninterpreter check: transformed kernel produces identical C ✓");

    // ── 2. the runtime side: the same shape on real threads ─────────────
    let (n, m, k) = (256usize, 256usize, 64usize);
    let a_mat = gen_a(n, k);
    let b_mat = gen_b(k, m);
    let want = matmul_serial(&a_mat, &b_mat, n, m, k);
    let threads = std::thread::available_parallelism()
        .map(|x| x.get())
        .unwrap_or(4);
    let dims = [n as u64, m as u64];

    println!("\n── real threads: {n}x{m}x{k} matmul, {threads} workers ──");
    println!("  {:<22} {:>10}  {:>8}", "strategy", "time", "chunks");
    let report = |name: &str, elapsed: Duration, chunks: u64, c: &AtomicMatrix| {
        assert_eq!(c.snapshot(), want, "{name} computed a wrong product");
        println!(
            "  {:<22} {:>8.2}ms  {:>8}",
            name,
            elapsed.as_secs_f64() * 1e3,
            chunks
        );
    };

    for policy in [
        PolicyKind::SelfSched,
        PolicyKind::Chunked(64),
        PolicyKind::Guided,
    ] {
        let c = AtomicMatrix::zeroed(n, m);
        let opts = RuntimeOptions { threads, policy };
        let stats = coalesced_for(&dims, &opts, |iv| matmul_cell(&a_mat, &b_mat, &c, k, iv));
        report(
            &format!("coalesced {}", policy.name()),
            stats.elapsed,
            stats.total_chunks(),
            &c,
        );
    }
    {
        let c = AtomicMatrix::zeroed(n, m);
        let opts = RuntimeOptions {
            threads,
            policy: PolicyKind::Guided,
        };
        let stats = outer_for(&dims, &opts, |iv| matmul_cell(&a_mat, &b_mat, &c, k, iv));
        report(
            "outer-parallel GSS",
            stats.elapsed,
            stats.total_chunks(),
            &c,
        );
    }
    {
        let c = AtomicMatrix::zeroed(n, m);
        let opts = RuntimeOptions {
            threads,
            policy: PolicyKind::SelfSched,
        };
        let stats = inner_sweep_for(&dims, &opts, |iv| matmul_cell(&a_mat, &b_mat, &c, k, iv));
        report("fork-join per row", stats.elapsed, stats.total_chunks(), &c);
    }
    println!("\n(fork-join per row pays a thread fork + join for each of the {n} rows —");
    println!(" the overhead the coalescing transformation eliminates)");
}
