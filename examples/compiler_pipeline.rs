//! The full compiler story on one program: normalization, dependence
//! analysis, interchange, coalescing, and strength reduction of the
//! recovery code.
//!
//! ```text
//! cargo run --example compiler_pipeline
//! ```

use loop_coalescing::ir::analysis::depend::analyze_nest;
use loop_coalescing::ir::analysis::nest::extract_nest;
use loop_coalescing::ir::parser::parse_program;
use loop_coalescing::ir::printer::print_stmt_str;
use loop_coalescing::ir::Stmt;
use loop_coalescing::xform::coalesce::{coalesce_loop, CoalesceOptions};
use loop_coalescing::xform::interchange::interchange;
use loop_coalescing::xform::recovery::{recovery_stmts, RecoveryScheme};
use loop_coalescing::xform::strength::cse_recovery;
use loop_coalescing::xform::stripmine::strip_mine;

fn get_loop(src: &str) -> loop_coalescing::ir::Loop {
    let p = parse_program(src).unwrap();
    p.body
        .iter()
        .find_map(|s| match s {
            Stmt::Loop(l) => Some(l.clone()),
            _ => None,
        })
        .expect("program has a loop")
}

fn main() {
    // ── 1. dependence analysis: what is parallel here? ──────────────────
    let l = get_loop(
        "
        array A[64][64];
        for i = 2..64 {
            for j = 1..64 {
                A[i][j] = A[i - 1][j] + 1;
            }
        }
        ",
    );
    let nest = extract_nest(&l);
    let deps = analyze_nest(&nest).unwrap();
    println!("── column recurrence A[i][j] = A[i-1][j] + 1 ────────────");
    println!("parallelizable levels: {:?}  (i carries, j is free)", deps.parallelizable_levels());

    // ── 2. interchange moves the parallel loop outward ──────────────────
    let swapped = interchange(&l, 0).unwrap();
    println!("\nafter interchange (j now outermost, legal: direction (<,=)):");
    print!("{}", print_stmt_str(&Stmt::Loop(swapped)));

    // Coalescing the whole nest is — correctly — refused:
    let err = coalesce_loop(&l, &CoalesceOptions::default()).unwrap_err();
    println!("\ncoalescing the whole recurrence nest is rejected:\n  {err}");

    // ── 3. a legal nest: normalize, coalesce, strength-reduce ───────────
    let l = get_loop(
        "
        array B[100][40];
        doall i = 3..21 step 2 {
            doall j = 4..40 step 3 {
                B[i][j] = i * j;
            }
        }
        ",
    );
    println!("\n── strided doall nest ───────────────────────────────────");
    print!("{}", print_stmt_str(&Stmt::Loop(l.clone())));
    let out = coalesce_loop(&l, &CoalesceOptions::default()).unwrap();
    println!("\nnormalized and coalesced ({} iterations):", out.info.total_iterations);
    print!("{}", print_stmt_str(&Stmt::Loop(out.transformed.clone())));

    // ── 4. strength reduction on deep-nest recovery code ────────────────
    let dims = [6u64, 5, 4, 3];
    let j = loop_coalescing::ir::Symbol::new("j");
    let vars: Vec<_> = ["i1", "i2", "i3", "i4"]
        .iter()
        .map(loop_coalescing::ir::Symbol::new)
        .collect();
    let raw = recovery_stmts(RecoveryScheme::Ceiling, &j, &vars, &dims);
    let (optimized, report) = cse_recovery(&raw, "t");
    println!("\n── recovery code for a depth-4 nest (dims {dims:?}) ─────");
    for s in &raw {
        print!("  {}", print_stmt_str(s));
    }
    println!("after CSE ({} temps, cost {} → {}):", report.hoisted, report.cost_before, report.cost_after);
    for s in &optimized {
        print!("  {}", print_stmt_str(s));
    }

    // ── 5. chunking: strip-mine the coalesced loop ──────────────────────
    let mined = strip_mine(&out.transformed, 16).unwrap();
    println!("\n── coalesced loop strip-mined into chunks of 16 ─────────");
    print!("{}", print_stmt_str(&Stmt::Loop(mined)));
}
