//! The full compiler story on one program, driven through the
//! instrumented pass driver (`lc-driver`): normalization, nest
//! perfection, interchange, coalescing with typed skip diagnostics, and
//! the per-pass trace with cache counters.
//!
//! ```text
//! cargo run --example compiler_pipeline
//! ```

use loop_coalescing::driver::{Driver, DriverOptions};
use loop_coalescing::xform::coalesce::CoalesceOptions;

fn main() {
    // ── 1. the default pipeline on a mixed program ──────────────────────
    //
    // Three top-level nests: a clean doall nest (coalesces), a column
    // recurrence (interchange moves the parallel level outward, but the
    // full band still carries, so it is skipped with a typed reason),
    // and a symbolic-bound nest (falls back to symbolic coalescing).
    let src = "
        array A[20][30];
        array R[16][16];
        array S[12][9];
        n = 12;
        m = 9;
        doall i = 1..20 {
            doall j = 1..30 {
                A[i][j] = i * j;
            }
        }
        for i = 2..16 {
            for j = 1..16 {
                R[i][j] = R[i - 1][j] + j;
            }
        }
        doall i = 1..n {
            doall j = 1..m {
                S[i][j] = i * 100 + j;
            }
        }
    ";
    let driver = Driver::default();
    let out = driver.compile(src).unwrap();

    println!("── transformed program ──────────────────────────────────");
    print!("{}", out.transformed_source);

    println!("\n── typed skip diagnostics ───────────────────────────────");
    for skip in &out.skipped {
        println!("nest {}: {}", skip.nest, skip);
    }

    // ── 2. per-pass observability ───────────────────────────────────────
    //
    // Every pass invocation is timed and recorded; analyses (extraction,
    // normalization, dependence testing) are cached per nest, so the
    // counters show each one computed at most once per nest.
    println!("\n── pipeline trace ───────────────────────────────────────");
    print!("{}", out.trace.report());

    // The trace serializes without serde (hand-rolled JSON — the build
    // is fully offline) and round-trips:
    let json = out.trace.to_json_string();
    let back = loop_coalescing::driver::PipelineTrace::from_json_string(&json).unwrap();
    assert_eq!(back.cache, out.trace.cache);
    println!("\ntrace JSON: {} bytes, round-trips OK", json.len());

    // ── 3. facade-compatible mode ───────────────────────────────────────
    //
    // DriverOptions::facade_compat reproduces the seed `coalesce_source`
    // pipeline byte for byte: coalesce + validate only, no structural
    // enabling passes.
    let compat = Driver::new(DriverOptions::facade_compat(CoalesceOptions::default()))
        .compile(src)
        .unwrap();
    println!(
        "\nfacade-compat mode: {} coalesced, {} skipped (same as coalesce_source)",
        compat.coalesced.len(),
        compat.skipped.len()
    );

    // ── 4. parallel batch compilation ───────────────────────────────────
    //
    // The batch compiler is itself a self-scheduled loop — workers pull
    // the next program index from one shared atomic counter, the
    // software analogue of the paper's fetch&add dispatcher. Results
    // keep input order and match sequential compilation exactly.
    let programs: Vec<String> = (1..=64)
        .map(|k| {
            format!("array B[{k}][8]; doall i = 1..{k} {{ doall j = 1..8 {{ B[i][j] = i + j; }} }}")
        })
        .collect();
    let results = driver.compile_batch(&programs);
    let coalesced = results
        .iter()
        .filter(|r| r.result.as_ref().is_ok_and(|o| !o.coalesced.is_empty()))
        .count();
    let batch_nanos: u64 = results.iter().map(|r| r.nanos).sum();
    println!(
        "\nbatch: compiled {} programs in parallel, {} coalesced, {:.1}ms of worker time",
        results.len(),
        coalesced,
        batch_nanos as f64 / 1e6
    );
}
