//! Serving-layer demo: start the compile server on a loopback port,
//! fire three requests at it (a cold compile, the same compile again to
//! show the cache hit, and a batch), then print the `/metrics` scrape.
//!
//! ```text
//! cargo run --example serve_demo
//! ```

use std::time::Duration;

use lc_driver::json::Json;
use lc_service::{client, Server, ServiceConfig};

const TIMEOUT: Duration = Duration::from_secs(10);

const PROGRAM: &str = "array A[8][6];
doall i = 1..8 {
    doall j = 1..6 {
        A[i][j] = i * j;
    }
}";

fn main() {
    let server = Server::start(ServiceConfig::default(), "127.0.0.1:0").expect("bind loopback");
    let addr = server.addr();
    println!("server up on http://{addr}\n");

    // Request 1: a cold compile — misses the cache, runs the pipeline.
    let cold = client::post(addr, "/compile", PROGRAM.as_bytes(), TIMEOUT).expect("compile");
    let body = Json::parse(&cold.body_text()).expect("json body");
    println!(
        "1) POST /compile          -> {} (x-cache: {})",
        cold.status,
        cold.header("x-cache").unwrap_or("?")
    );
    println!(
        "   coalesced source:\n{}",
        body.str_field("source")
            .expect("source field")
            .lines()
            .map(|l| format!("      {l}"))
            .collect::<Vec<_>>()
            .join("\n")
    );

    // Request 2: the same program — served from the compile cache,
    // byte-identical, never touching the worker pool.
    let warm = client::post(addr, "/compile", PROGRAM.as_bytes(), TIMEOUT).expect("recompile");
    println!(
        "\n2) POST /compile (again)  -> {} (x-cache: {}, byte-identical: {})",
        warm.status,
        warm.header("x-cache").unwrap_or("?"),
        warm.body == cold.body
    );

    // Request 3: a batch — per-item results and wall times.
    let batch_body = Json::obj(vec![(
        "sources",
        Json::Arr(vec![
            Json::Str("array B[5]; doall i = 1..5 { B[i] = i; }".to_string()),
            Json::Str("not a program".to_string()),
        ]),
    )])
    .to_string();
    let batch = client::post(addr, "/batch", batch_body.as_bytes(), TIMEOUT).expect("batch");
    let batch_json = Json::parse(&batch.body_text()).expect("batch json");
    println!(
        "\n3) POST /batch            -> {} ({} succeeded, {} failed)",
        batch.status,
        batch_json.int_field("succeeded").unwrap_or(-1),
        batch_json.int_field("failed").unwrap_or(-1),
    );

    // And the scrape: counters for everything the three requests did.
    let metrics = client::get(addr, "/metrics", TIMEOUT).expect("metrics");
    println!("\nGET /metrics:");
    for line in metrics.body_text().lines().filter(|l| !l.starts_with('#')) {
        println!("   {line}");
    }

    server.shutdown();
    println!("\nserver drained, done");
}
