//! The collapse-band advisor: let the cost model decide how many levels
//! to coalesce, instead of always collapsing everything.
//!
//! ```text
//! cargo run --release --example auto_collapse
//! ```

use loop_coalescing::ir::parser::parse_program;
use loop_coalescing::ir::printer::print_stmt_str;
use loop_coalescing::ir::Stmt;
use loop_coalescing::sched::advise::AdviseParams;
use loop_coalescing::{advise_collapse, coalesce_advised};

fn main() {
    let src = "
        array V[8][8][8][8];
        doall a = 1..8 {
            doall b = 1..8 {
                doall c = 1..8 {
                    doall d = 1..8 {
                        V[a][b][c][d] = a * 512 + b * 64 + c * 8 + d;
                    }
                }
            }
        }
    ";
    let p = parse_program(src).unwrap();
    let Stmt::Loop(l) = &p.body[0] else { panic!() };

    for (label, p_count, body) in [
        ("small machine, fat bodies", 4u64, 400u64),
        ("medium machine", 16, 50),
        ("large machine, thin bodies", 256, 10),
    ] {
        let params = AdviseParams {
            p: p_count,
            body_cost: body,
            ..Default::default()
        };
        let advice = advise_collapse(l, &params).unwrap();
        println!("── {label}: p = {p_count}, body ≈ {body} ops ──");
        println!("   chosen band: {:?}", advice.band);
        for c in advice.candidates.iter().take(4) {
            println!("     band {:?}  est. makespan {:>8}", c.band, c.estimate);
        }
        println!();
    }

    // Apply the medium-machine advice and show the result.
    let params = AdviseParams {
        p: 16,
        body_cost: 50,
        ..Default::default()
    };
    let result = coalesce_advised(l, &params).unwrap();
    println!(
        "── transformed (band {:?} of depth {}) ──",
        result.info.levels, result.info.original_depth
    );
    print!("{}", print_stmt_str(&Stmt::Loop(result.transformed)));
    println!("\nThe advisor collapses only as many levels as the machine needs:");
    println!("more levels would add index-recovery divisions to every iteration");
    println!("without exposing any balance the processors could use.");
}
