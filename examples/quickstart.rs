//! Quickstart: coalesce a doubly-nested parallel loop and show the
//! rewritten source.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use loop_coalescing::coalesce_source;

fn main() {
    let src = "
        array A[100][50];
        doall i = 1..100 {
            doall j = 1..50 {
                A[i][j] = i * j + i - j;
            }
        }
    ";

    println!("── original ─────────────────────────────────────────────");
    println!("{}", src.trim());

    let out = coalesce_source(src).expect("coalescing failed");

    println!("\n── coalesced ────────────────────────────────────────────");
    print!("{}", out.transformed_source);

    for info in &out.coalesced {
        println!("\n── what happened ────────────────────────────────────────");
        println!(
            "  coalesced levels : {:?} of a depth-{} nest",
            info.levels, info.original_depth
        );
        println!(
            "  trip counts      : {:?}  →  one loop of {} iterations",
            info.dims, info.total_iterations
        );
        println!(
            "  recovery scheme  : {} ({} abstract ops/iteration)",
            info.scheme.name(),
            info.recovery_cost_per_iteration
        );
        println!("  new index        : {}", info.coalesced_var);
    }
    println!("\nThe rewrite was validated against the reference interpreter");
    println!("(same final store under forward, reverse, and shuffled doall orders).");
}
